//! Hand-rolled JSON serialization for simulation results.
//!
//! The vendored `serde` is a marker-trait stub (no registry access in the
//! build environment), so persistent result files are produced by this
//! module instead: a small JSON document model ([`JsonValue`]), a writer
//! and a recursive-descent parser, plus [`ToJson`]/[`FromJson`]
//! implementations for the result types the serving layer and the CI
//! regression harness persist ([`SimReport`], [`SimSummary`],
//! [`CacheStats`] and their nested breakdowns).
//!
//! ## Byte-identical round trips
//!
//! CI diffs result files across commits, so `parse(serialize(x))` must not
//! drift. Two design choices guarantee that a parsed document re-serializes
//! to the exact bytes it was parsed from:
//!
//! * numbers keep their literal token text (`JsonValue::Number` stores the
//!   digits, not an `f64`), so no reformatting can occur, and
//! * objects preserve key order (`Vec<(String, JsonValue)>`, not a map).
//!
//! Values serialized from Rust floats use the standard shortest
//! round-trip `Display` formatting, so `f64 -> text -> f64` is lossless as
//! well.

use crate::{CacheStats, PipelineStats, SimError, SimReport, SimSummary};
use rasa_cpu::{CpuStats, SchedStats};
use rasa_numeric::RegisterBlock;
use rasa_numeric::{ConvShape, TilingConfig};
use rasa_power::{AreaBreakdown, EnergyBreakdown, PowerReport};
use rasa_systolic::EngineStats;
use rasa_trace::{GemmKernelConfig, KernelScheme, LoopOrder, MatmulOrder};
use rasa_workloads::{LayerKind, LayerSpec};
use std::fmt;

/// A parse or decode error, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input for parse errors (`None` for decode
    /// errors raised while mapping a document onto a Rust type).
    pub offset: Option<usize>,
}

impl JsonError {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// A decode error (document shape does not match the target type).
    #[must_use]
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "json parse error at byte {at}: {}", self.message),
            None => write!(f, "json decode error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for SimError {
    fn from(value: JsonError) -> Self {
        SimError::Json {
            reason: value.to_string(),
        }
    }
}

/// A JSON document node.
///
/// Numbers are stored as their literal token text (see the module docs for
/// why); use [`JsonValue::number_from_u64`] /
/// [`number_from_f64`](JsonValue::number_from_f64) to build them from Rust values and
/// [`as_u64`](Self::as_u64) / [`as_f64`](Self::as_f64) to read them back.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token text.
    Number(String),
    /// A string (unescaped content).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number node for an unsigned integer.
    #[must_use]
    pub fn number_from_u64(value: u64) -> JsonValue {
        JsonValue::Number(value.to_string())
    }

    /// A number node for a `usize`.
    #[must_use]
    pub fn number_from_usize(value: usize) -> JsonValue {
        JsonValue::Number(value.to_string())
    }

    /// A number node for a finite float, formatted with Rust's shortest
    /// round-trip representation. Non-finite values (which valid metrics
    /// never produce) serialize as `null` to keep the document well-formed.
    #[must_use]
    pub fn number_from_f64(value: f64) -> JsonValue {
        if value.is_finite() {
            JsonValue::Number(format!("{value}"))
        } else {
            JsonValue::Null
        }
    }

    /// A string node.
    #[must_use]
    pub fn string(value: impl Into<String>) -> JsonValue {
        JsonValue::String(value.into())
    }

    /// The value of an object member, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// This node as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This node as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This node as a `u64` (number token must parse as one).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// This node as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// This node as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// This node's array elements.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Appends the compact serialization to `out`, reusing the string's
    /// capacity — the allocation-free path pooled wire buffers take.
    pub fn write_compact(&self, out: &mut String) {
        self.write(out, None, 0);
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// format of every result file this workspace writes (stable for
    /// line-based diffing in CI).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(text) => out.push_str(text),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset for malformed input
    /// (including trailing non-whitespace after the document).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::parse(
                "trailing characters after document",
                parser.pos,
            ));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                format!("expected '{}'", byte as char),
                self.pos,
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(JsonError::parse("expected a JSON value", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(JsonError::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::parse("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::parse("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => {
                            return Err(JsonError::parse("invalid escape", self.pos - 1));
                        }
                    }
                }
                // Multi-byte UTF-8: copy the whole code point verbatim.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    let len =
                        utf8_len(b).ok_or_else(|| JsonError::parse("invalid utf-8", start))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| JsonError::parse("truncated utf-8", start))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| JsonError::parse("invalid utf-8", start))?;
                    out.push_str(s);
                    self.pos = end;
                }
                b if b < 0x20 => {
                    return Err(JsonError::parse(
                        "unescaped control character in string",
                        self.pos - 1,
                    ));
                }
                b => out.push(b as char),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos;
        let slice = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| JsonError::parse("truncated \\u escape", start))?;
        let text = std::str::from_utf8(slice)
            .map_err(|_| JsonError::parse("invalid \\u escape", start))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| JsonError::parse("invalid \\u escape", start))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let code = self.parse_hex4()?;
        // Surrogate pair: \uD8xx must be followed by \uDCxx.
        if (0xD800..0xDC00).contains(&code) {
            if !self.eat_literal("\\u") {
                return Err(JsonError::parse("unpaired surrogate", at));
            }
            let low = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(JsonError::parse("invalid low surrogate", at));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(combined)
                .ok_or_else(|| JsonError::parse("invalid surrogate pair", at));
        }
        if (0xDC00..0xE000).contains(&code) {
            return Err(JsonError::parse("unpaired low surrogate", at));
        }
        char::from_u32(code).ok_or_else(|| JsonError::parse("invalid \\u escape", at))
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.eat_digits();
        if int_digits == 0 {
            return Err(JsonError::parse("expected digits", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(JsonError::parse("expected fraction digits", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(JsonError::parse("expected exponent digits", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ascii")
            .to_string();
        Ok(JsonValue::Number(text))
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Types that serialize to a [`JsonValue`].
pub trait ToJson {
    /// Builds the JSON document node for this value.
    fn to_json(&self) -> JsonValue;
}

/// Types that reconstruct from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Maps a document node back onto this type.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document shape does not match.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

fn member<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::decode(format!("missing field '{key}'")))
}

fn u64_member(value: &JsonValue, key: &str) -> Result<u64, JsonError> {
    member(value, key)?
        .as_u64()
        .ok_or_else(|| JsonError::decode(format!("field '{key}' is not a u64")))
}

fn usize_member(value: &JsonValue, key: &str) -> Result<usize, JsonError> {
    member(value, key)?
        .as_usize()
        .ok_or_else(|| JsonError::decode(format!("field '{key}' is not a usize")))
}

fn f64_member(value: &JsonValue, key: &str) -> Result<f64, JsonError> {
    member(value, key)?
        .as_f64()
        .ok_or_else(|| JsonError::decode(format!("field '{key}' is not a number")))
}

fn string_member(value: &JsonValue, key: &str) -> Result<String, JsonError> {
    Ok(member(value, key)?
        .as_str()
        .ok_or_else(|| JsonError::decode(format!("field '{key}' is not a string")))?
        .to_string())
}

impl ToJson for EngineStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("matmuls".into(), JsonValue::number_from_u64(self.matmuls)),
            (
                "weight_bypasses".into(),
                JsonValue::number_from_u64(self.weight_bypasses),
            ),
            (
                "weight_prefetches".into(),
                JsonValue::number_from_u64(self.weight_prefetches),
            ),
            (
                "full_weight_loads".into(),
                JsonValue::number_from_u64(self.full_weight_loads),
            ),
            (
                "occupancy_cycles".into(),
                JsonValue::number_from_u64(self.occupancy_cycles),
            ),
            (
                "last_completion_cycle".into(),
                JsonValue::number_from_u64(self.last_completion_cycle),
            ),
            (
                "total_macs".into(),
                JsonValue::number_from_u64(self.total_macs),
            ),
            (
                "operand_stall_cycles".into(),
                JsonValue::number_from_u64(self.operand_stall_cycles),
            ),
            (
                "structural_stall_cycles".into(),
                JsonValue::number_from_u64(self.structural_stall_cycles),
            ),
        ])
    }
}

impl FromJson for EngineStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(EngineStats {
            matmuls: u64_member(value, "matmuls")?,
            weight_bypasses: u64_member(value, "weight_bypasses")?,
            weight_prefetches: u64_member(value, "weight_prefetches")?,
            full_weight_loads: u64_member(value, "full_weight_loads")?,
            occupancy_cycles: u64_member(value, "occupancy_cycles")?,
            last_completion_cycle: u64_member(value, "last_completion_cycle")?,
            total_macs: u64_member(value, "total_macs")?,
            operand_stall_cycles: u64_member(value, "operand_stall_cycles")?,
            structural_stall_cycles: u64_member(value, "structural_stall_cycles")?,
        })
    }
}

impl ToJson for CpuStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("cycles".into(), JsonValue::number_from_u64(self.cycles)),
            (
                "retired_instructions".into(),
                JsonValue::number_from_u64(self.retired_instructions),
            ),
            (
                "retired_matmuls".into(),
                JsonValue::number_from_u64(self.retired_matmuls),
            ),
            (
                "retired_tile_memory_ops".into(),
                JsonValue::number_from_u64(self.retired_tile_memory_ops),
            ),
            (
                "rob_full_stalls".into(),
                JsonValue::number_from_u64(self.rob_full_stalls),
            ),
            (
                "rs_full_stalls".into(),
                JsonValue::number_from_u64(self.rs_full_stalls),
            ),
            ("engine".into(), self.engine.to_json()),
        ])
    }
}

impl FromJson for CpuStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(CpuStats {
            cycles: u64_member(value, "cycles")?,
            retired_instructions: u64_member(value, "retired_instructions")?,
            retired_matmuls: u64_member(value, "retired_matmuls")?,
            retired_tile_memory_ops: u64_member(value, "retired_tile_memory_ops")?,
            rob_full_stalls: u64_member(value, "rob_full_stalls")?,
            rs_full_stalls: u64_member(value, "rs_full_stalls")?,
            engine: EngineStats::from_json(member(value, "engine")?)?,
        })
    }
}

impl ToJson for SchedStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "visited_cycles".into(),
                JsonValue::number_from_u64(self.visited_cycles),
            ),
            (
                "skipped_cycles".into(),
                JsonValue::number_from_u64(self.skipped_cycles),
            ),
            (
                "completion_events".into(),
                JsonValue::number_from_u64(self.completion_events),
            ),
            ("wakeups".into(), JsonValue::number_from_u64(self.wakeups)),
        ])
    }
}

impl FromJson for SchedStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SchedStats {
            visited_cycles: u64_member(value, "visited_cycles")?,
            skipped_cycles: u64_member(value, "skipped_cycles")?,
            completion_events: u64_member(value, "completion_events")?,
            wakeups: u64_member(value, "wakeups")?,
        })
    }
}

impl ToJson for PipelineStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("streamed".into(), JsonValue::Bool(self.streamed)),
            ("segments".into(), JsonValue::number_from_u64(self.segments)),
            (
                "fed_instructions".into(),
                JsonValue::number_from_u64(self.fed_instructions),
            ),
            (
                "peak_resident_instructions".into(),
                JsonValue::number_from_u64(self.peak_resident_instructions),
            ),
            (
                "spec_forks".into(),
                JsonValue::number_from_u64(self.spec_forks),
            ),
            (
                "spec_commits".into(),
                JsonValue::number_from_u64(self.spec_commits),
            ),
            (
                "spec_replays".into(),
                JsonValue::number_from_u64(self.spec_replays),
            ),
        ])
    }
}

impl FromJson for PipelineStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let streamed = member(value, "streamed")?
            .as_bool()
            .ok_or_else(|| JsonError::decode("field 'streamed' is not a bool"))?;
        // The speculation counters are absent in documents written before
        // the fork/join scheduler existed; default them to zero.
        let optional = |key: &str| value.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(PipelineStats {
            streamed,
            segments: u64_member(value, "segments")?,
            fed_instructions: u64_member(value, "fed_instructions")?,
            peak_resident_instructions: u64_member(value, "peak_resident_instructions")?,
            spec_forks: optional("spec_forks"),
            spec_commits: optional("spec_commits"),
            spec_replays: optional("spec_replays"),
        })
    }
}

impl ToJson for AreaBreakdown {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "multipliers".into(),
                JsonValue::number_from_f64(self.multipliers),
            ),
            ("adders".into(), JsonValue::number_from_f64(self.adders)),
            (
                "weight_buffers".into(),
                JsonValue::number_from_f64(self.weight_buffers),
            ),
            ("pipeline".into(), JsonValue::number_from_f64(self.pipeline)),
            ("control".into(), JsonValue::number_from_f64(self.control)),
        ])
    }
}

impl FromJson for AreaBreakdown {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(AreaBreakdown {
            multipliers: f64_member(value, "multipliers")?,
            adders: f64_member(value, "adders")?,
            weight_buffers: f64_member(value, "weight_buffers")?,
            pipeline: f64_member(value, "pipeline")?,
            control: f64_member(value, "control")?,
        })
    }
}

impl ToJson for EnergyBreakdown {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("mac".into(), JsonValue::number_from_f64(self.mac)),
            (
                "weight_load".into(),
                JsonValue::number_from_f64(self.weight_load),
            ),
            ("tile_io".into(), JsonValue::number_from_f64(self.tile_io)),
            (
                "static_clock".into(),
                JsonValue::number_from_f64(self.static_clock),
            ),
        ])
    }
}

impl FromJson for EnergyBreakdown {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(EnergyBreakdown {
            mac: f64_member(value, "mac")?,
            weight_load: f64_member(value, "weight_load")?,
            tile_io: f64_member(value, "tile_io")?,
            static_clock: f64_member(value, "static_clock")?,
        })
    }
}

impl ToJson for PowerReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("design".into(), JsonValue::string(&self.design)),
            ("area".into(), self.area.to_json()),
            ("energy".into(), self.energy.to_json()),
            (
                "core_cycles".into(),
                JsonValue::number_from_u64(self.core_cycles),
            ),
        ])
    }
}

impl FromJson for PowerReport {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(PowerReport {
            design: string_member(value, "design")?,
            area: AreaBreakdown::from_json(member(value, "area")?)?,
            energy: EnergyBreakdown::from_json(member(value, "energy")?)?,
            core_cycles: u64_member(value, "core_cycles")?,
        })
    }
}

impl ToJson for SimReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("design".into(), JsonValue::string(&self.design)),
            ("workload".into(), JsonValue::string(&self.workload)),
            (
                "core_cycles".into(),
                JsonValue::number_from_u64(self.core_cycles),
            ),
            (
                "simulated_core_cycles".into(),
                JsonValue::number_from_u64(self.simulated_core_cycles),
            ),
            (
                "simulated_matmuls".into(),
                JsonValue::number_from_u64(self.simulated_matmuls),
            ),
            (
                "total_matmuls".into(),
                JsonValue::number_from_u64(self.total_matmuls),
            ),
            (
                "runtime_seconds".into(),
                JsonValue::number_from_f64(self.runtime_seconds),
            ),
            ("cpu".into(), self.cpu.to_json()),
            ("sched".into(), self.sched.to_json()),
            ("pipeline".into(), self.pipeline.to_json()),
            ("power".into(), self.power.to_json()),
        ])
    }
}

impl FromJson for SimReport {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SimReport {
            design: string_member(value, "design")?,
            workload: string_member(value, "workload")?,
            core_cycles: u64_member(value, "core_cycles")?,
            simulated_core_cycles: u64_member(value, "simulated_core_cycles")?,
            simulated_matmuls: u64_member(value, "simulated_matmuls")?,
            total_matmuls: u64_member(value, "total_matmuls")?,
            runtime_seconds: f64_member(value, "runtime_seconds")?,
            cpu: CpuStats::from_json(member(value, "cpu")?)?,
            sched: SchedStats::from_json(member(value, "sched")?)?,
            // Absent in documents written before the streaming pipeline;
            // default the diagnostics so old warm-start dumps still load.
            pipeline: value
                .get("pipeline")
                .map(PipelineStats::from_json)
                .transpose()?
                .unwrap_or_default(),
            power: PowerReport::from_json(member(value, "power")?)?,
        })
    }
}

impl ToJson for SimSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("design".into(), JsonValue::string(&self.design)),
            ("workload".into(), JsonValue::string(&self.workload)),
            (
                "core_cycles".into(),
                JsonValue::number_from_u64(self.core_cycles),
            ),
            (
                "simulated_matmuls".into(),
                JsonValue::number_from_u64(self.simulated_matmuls),
            ),
            (
                "total_matmuls".into(),
                JsonValue::number_from_u64(self.total_matmuls),
            ),
            (
                "runtime_seconds".into(),
                JsonValue::number_from_f64(self.runtime_seconds),
            ),
            ("ipc".into(), JsonValue::number_from_f64(self.ipc)),
            (
                "engine_bypass_rate".into(),
                JsonValue::number_from_f64(self.engine_bypass_rate),
            ),
            ("area_mm2".into(), JsonValue::number_from_f64(self.area_mm2)),
            (
                "energy_joules".into(),
                JsonValue::number_from_f64(self.energy_joules),
            ),
            (
                "sched_events".into(),
                JsonValue::number_from_u64(self.sched_events),
            ),
            (
                "visited_cycles".into(),
                JsonValue::number_from_u64(self.visited_cycles),
            ),
            ("segments".into(), JsonValue::number_from_u64(self.segments)),
            (
                "peak_resident_instructions".into(),
                JsonValue::number_from_u64(self.peak_resident_instructions),
            ),
            (
                "spec_forks".into(),
                JsonValue::number_from_u64(self.spec_forks),
            ),
            (
                "spec_commits".into(),
                JsonValue::number_from_u64(self.spec_commits),
            ),
            (
                "spec_replays".into(),
                JsonValue::number_from_u64(self.spec_replays),
            ),
        ])
    }
}

impl FromJson for SimSummary {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SimSummary {
            design: string_member(value, "design")?,
            workload: string_member(value, "workload")?,
            core_cycles: u64_member(value, "core_cycles")?,
            simulated_matmuls: u64_member(value, "simulated_matmuls")?,
            total_matmuls: u64_member(value, "total_matmuls")?,
            runtime_seconds: f64_member(value, "runtime_seconds")?,
            ipc: f64_member(value, "ipc")?,
            engine_bypass_rate: f64_member(value, "engine_bypass_rate")?,
            area_mm2: f64_member(value, "area_mm2")?,
            energy_joules: f64_member(value, "energy_joules")?,
            sched_events: u64_member(value, "sched_events")?,
            visited_cycles: u64_member(value, "visited_cycles")?,
            // Pipeline diagnostics are absent in pre-streaming documents;
            // default them rather than rejecting the row.
            segments: value
                .get("segments")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            peak_resident_instructions: value
                .get("peak_resident_instructions")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            spec_forks: value
                .get("spec_forks")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            spec_commits: value
                .get("spec_commits")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            spec_replays: value
                .get("spec_replays")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        })
    }
}

impl ToJson for LayerSpec {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![("name".into(), JsonValue::string(self.name()))];
        match self.kind() {
            LayerKind::Fc {
                batch,
                input_neurons,
                output_neurons,
            } => {
                members.push(("kind".into(), JsonValue::string("fc")));
                members.push(("batch".into(), JsonValue::number_from_usize(*batch)));
                members.push((
                    "input_neurons".into(),
                    JsonValue::number_from_usize(*input_neurons),
                ));
                members.push((
                    "output_neurons".into(),
                    JsonValue::number_from_usize(*output_neurons),
                ));
            }
            LayerKind::Conv(conv) => {
                members.push(("kind".into(), JsonValue::string("conv")));
                members.push(("n".into(), JsonValue::number_from_usize(conv.n)));
                members.push(("c".into(), JsonValue::number_from_usize(conv.c)));
                members.push(("y".into(), JsonValue::number_from_usize(conv.y)));
                members.push(("x".into(), JsonValue::number_from_usize(conv.x)));
                members.push(("k".into(), JsonValue::number_from_usize(conv.k)));
                members.push(("r".into(), JsonValue::number_from_usize(conv.r)));
                members.push(("s".into(), JsonValue::number_from_usize(conv.s)));
                members.push(("stride".into(), JsonValue::number_from_usize(conv.stride)));
                members.push(("pad".into(), JsonValue::number_from_usize(conv.pad)));
            }
        }
        JsonValue::Object(members)
    }
}

impl FromJson for LayerSpec {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let name = string_member(value, "name")?;
        match member(value, "kind")?.as_str() {
            Some("fc") => Ok(LayerSpec::fc(
                name,
                usize_member(value, "batch")?,
                usize_member(value, "input_neurons")?,
                usize_member(value, "output_neurons")?,
            )),
            Some("conv") => Ok(LayerSpec::conv(
                name,
                ConvShape::new(
                    usize_member(value, "n")?,
                    usize_member(value, "c")?,
                    usize_member(value, "y")?,
                    usize_member(value, "x")?,
                    usize_member(value, "k")?,
                    usize_member(value, "r")?,
                    usize_member(value, "s")?,
                    usize_member(value, "stride")?,
                    usize_member(value, "pad")?,
                ),
            )),
            Some(other) => Err(JsonError::decode(format!("unknown layer kind '{other}'"))),
            None => Err(JsonError::decode("field 'kind' is not a string")),
        }
    }
}

impl ToJson for GemmKernelConfig {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("tm".into(), JsonValue::number_from_usize(self.tiling.tm)),
            ("tk".into(), JsonValue::number_from_usize(self.tiling.tk)),
            ("tn".into(), JsonValue::number_from_usize(self.tiling.tn)),
            (
                "emit_scalar_overhead".into(),
                JsonValue::Bool(self.emit_scalar_overhead),
            ),
            (
                "max_matmuls".into(),
                self.max_matmuls
                    .map_or(JsonValue::Null, JsonValue::number_from_usize),
            ),
            (
                "matmul_order".into(),
                JsonValue::string(self.matmul_order.label()),
            ),
        ];
        // Scheme axes travel as one additive member, emitted only for
        // non-default schemes so default-kernel documents (wire requests,
        // pinned goldens) keep their pre-scheme bytes.
        if !self.scheme.is_default() {
            members.push((
                "scheme".into(),
                JsonValue::Object(vec![
                    (
                        "block_m".into(),
                        JsonValue::number_from_usize(self.scheme.block.m),
                    ),
                    (
                        "block_n".into(),
                        JsonValue::number_from_usize(self.scheme.block.n),
                    ),
                    (
                        "loop_order".into(),
                        JsonValue::string(self.scheme.loop_order.label()),
                    ),
                    (
                        "scalar_ops_per_step".into(),
                        JsonValue::number_from_usize(self.scheme.scalar_ops_per_step as usize),
                    ),
                    (
                        "segment_size".into(),
                        self.scheme
                            .segment_size
                            .map_or(JsonValue::Null, JsonValue::number_from_usize),
                    ),
                ]),
            ));
        }
        JsonValue::Object(members)
    }
}

impl FromJson for GemmKernelConfig {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let tiling = TilingConfig::new(
            usize_member(value, "tm")?,
            usize_member(value, "tk")?,
            usize_member(value, "tn")?,
        )
        .map_err(|e| JsonError::decode(format!("invalid tiling: {e}")))?;
        let emit_scalar_overhead = member(value, "emit_scalar_overhead")?
            .as_bool()
            .ok_or_else(|| JsonError::decode("field 'emit_scalar_overhead' is not a bool"))?;
        let max_matmuls = match member(value, "max_matmuls")? {
            JsonValue::Null => None,
            node => Some(
                node.as_usize()
                    .ok_or_else(|| JsonError::decode("field 'max_matmuls' is not a usize"))?,
            ),
        };
        let matmul_order = match member(value, "matmul_order")?.as_str() {
            Some("weight-paired") => MatmulOrder::WeightPaired,
            Some("interleaved") => MatmulOrder::Interleaved,
            Some(other) => {
                return Err(JsonError::decode(format!("unknown matmul order '{other}'")))
            }
            None => return Err(JsonError::decode("field 'matmul_order' is not a string")),
        };
        // The scheme member is additive: documents written before kernel
        // schemes existed (or for default-scheme kernels) simply omit it.
        let scheme = match value.get("scheme") {
            None | Some(JsonValue::Null) => KernelScheme::default(),
            Some(node) => {
                let block = RegisterBlock::new(
                    usize_member(node, "block_m")?,
                    usize_member(node, "block_n")?,
                )
                .map_err(|e| JsonError::decode(format!("invalid register block: {e}")))?;
                let loop_order = match member(node, "loop_order")?.as_str() {
                    Some("k-innermost") => LoopOrder::KInnermost,
                    Some("n-innermost") => LoopOrder::NInnermost,
                    Some(other) => {
                        return Err(JsonError::decode(format!("unknown loop order '{other}'")))
                    }
                    None => return Err(JsonError::decode("field 'loop_order' is not a string")),
                };
                let scalar_ops = usize_member(node, "scalar_ops_per_step")?;
                let scalar_ops_per_step = u8::try_from(scalar_ops).map_err(|_| {
                    JsonError::decode(format!("scalar_ops_per_step {scalar_ops} exceeds u8"))
                })?;
                let segment_size =
                    match member(node, "segment_size")? {
                        JsonValue::Null => None,
                        seg => Some(seg.as_usize().ok_or_else(|| {
                            JsonError::decode("field 'segment_size' is not a usize")
                        })?),
                    };
                KernelScheme {
                    block,
                    loop_order,
                    scalar_ops_per_step,
                    segment_size,
                }
            }
        };
        let kernel = GemmKernelConfig {
            tiling,
            emit_scalar_overhead,
            max_matmuls,
            matmul_order,
            scheme,
        };
        kernel
            .validate()
            .map_err(|e| JsonError::decode(format!("invalid kernel: {e}")))?;
        Ok(kernel)
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("hits".into(), JsonValue::number_from_u64(self.hits)),
            ("misses".into(), JsonValue::number_from_u64(self.misses)),
            ("entries".into(), JsonValue::number_from_usize(self.entries)),
            (
                "evictions".into(),
                JsonValue::number_from_u64(self.evictions),
            ),
            (
                "capacity".into(),
                JsonValue::number_from_usize(self.capacity),
            ),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(CacheStats {
            hits: u64_member(value, "hits")?,
            misses: u64_member(value, "misses")?,
            entries: usize_member(value, "entries")?,
            evictions: u64_member(value, "evictions")?,
            capacity: usize_member(value, "capacity")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignPoint, SimJob, Simulator};
    use rasa_workloads::WorkloadSuite;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "1e-6",
            "2.25E+10",
            "\"hello\"",
            "[]",
            "{}",
        ] {
            let value = JsonValue::parse(text).unwrap();
            assert_eq!(value.to_string_compact(), text, "round trip of {text}");
        }
    }

    #[test]
    fn number_tokens_are_preserved_verbatim() {
        // 1.0 and 1 are the same f64 but different tokens; parsing must not
        // normalize one into the other.
        let value = JsonValue::parse("[1.0, 1, 1e0]").unwrap();
        assert_eq!(value.to_string_compact(), "[1.0,1,1e0]");
        let items = value.as_array().unwrap();
        for item in items {
            assert_eq!(item.as_f64(), Some(1.0));
        }
        assert_eq!(items[1].as_u64(), Some(1));
        assert_eq!(items[0].as_u64(), None, "1.0 is not a u64 token");
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for f in [0.0, 1.0 / 3.0, 6.02e23, 1.0e-9, -123.456, f64::MIN_POSITIVE] {
            let node = JsonValue::number_from_f64(f);
            let back = JsonValue::parse(&node.to_string_compact())
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} must round-trip");
        }
        assert_eq!(JsonValue::number_from_f64(f64::NAN), JsonValue::Null);
        assert_eq!(JsonValue::number_from_f64(f64::INFINITY), JsonValue::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote:\" backslash:\\ newline:\n tab:\t unicode:λ€ bell:\u{7}";
        let node = JsonValue::string(original);
        let text = node.to_string_compact();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // And a second serialization is byte-identical.
        assert_eq!(back.to_string_compact(), text);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = JsonValue::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(
            JsonValue::parse(r#""\ud83d""#).is_err(),
            "unpaired surrogate"
        );
        assert!(
            JsonValue::parse(r#""\ude00""#).is_err(),
            "lone low surrogate"
        );
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = "{\"z\":1,\"a\":2,\"m\":3}";
        let value = JsonValue::parse(text).unwrap();
        assert_eq!(value.to_string_compact(), text);
        assert_eq!(value.get("a").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn pretty_format_is_stable_under_reparse() {
        let value = JsonValue::Object(vec![
            ("name".into(), JsonValue::string("serve")),
            (
                "stats".into(),
                JsonValue::Object(vec![
                    ("hits".into(), JsonValue::number_from_u64(3)),
                    ("rate".into(), JsonValue::number_from_f64(0.75)),
                ]),
            ),
            (
                "shapes".into(),
                JsonValue::Array(vec![
                    JsonValue::number_from_u64(1),
                    JsonValue::number_from_u64(2),
                ]),
            ),
            ("empty".into(), JsonValue::Array(Vec::new())),
        ]);
        let pretty = value.to_string_pretty();
        assert!(pretty.contains("\n  \"stats\": {\n    \"hits\": 3,"));
        let reparsed = JsonValue::parse(&pretty).unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(reparsed.to_string_pretty(), pretty, "byte-identical");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for (text, what) in [
            ("", "empty"),
            ("{", "unterminated object"),
            ("[1,]", "trailing comma"),
            ("{\"a\" 1}", "missing colon"),
            ("\"abc", "unterminated string"),
            ("1.5x", "trailing characters"),
            ("01x", "trailing characters after 0"),
            ("nul", "bad literal"),
            ("-", "lone minus"),
            ("1.", "missing fraction"),
            ("1e", "missing exponent"),
            ("\"\\q\"", "bad escape"),
        ] {
            let err = JsonValue::parse(text).expect_err(what);
            assert!(err.offset.is_some(), "{what}: {err}");
            assert!(err.to_string().contains("parse error"));
        }
        let decode = JsonError::decode("missing field 'x'");
        assert!(decode.to_string().contains("decode"));
        let sim: SimError = decode.into();
        assert!(matches!(sim, SimError::Json { .. }));
    }

    #[test]
    fn sim_report_round_trips_through_json() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap().clone();
        let report = Simulator::new(DesignPoint::rasa_dmdb_wls())
            .unwrap()
            .with_matmul_cap(Some(64))
            .unwrap()
            .run_layer(&layer)
            .unwrap();
        let json = report.to_json();
        let text = json.to_string_pretty();
        let back = SimReport::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report, "full report must survive the round trip");
        // Byte-identity: reload + re-serialize is exactly the same file.
        assert_eq!(JsonValue::parse(&text).unwrap().to_string_pretty(), text);
        // The scheduler counters are part of the document.
        assert!(report.sched.completion_events > 0);
        assert_eq!(back.sched, report.sched);
        let sched = SchedStats::from_json(member(&json, "sched").unwrap()).unwrap();
        assert_eq!(sched, report.sched);
    }

    #[test]
    fn summary_and_cache_stats_round_trip() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("BERT-1").unwrap().clone();
        let runner = crate::ExperimentRunner::builder()
            .with_matmul_cap(Some(64))
            .with_cache_capacity(4)
            .serial()
            .build()
            .unwrap();
        let report = runner
            .run_job(&SimJob::new(DesignPoint::baseline(), layer))
            .unwrap();
        let summary = report.summary();
        let back = SimSummary::from_json(
            &JsonValue::parse(&summary.to_json().to_string_pretty()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, summary);

        let stats = runner.cache_stats();
        let back =
            CacheStats::from_json(&JsonValue::parse(&stats.to_json().to_string_compact()).unwrap())
                .unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn decode_rejects_wrong_shapes() {
        let value = JsonValue::parse("{\"hits\":1}").unwrap();
        let err = CacheStats::from_json(&value).unwrap_err();
        assert!(err.message.contains("missing field"));
        let value = JsonValue::parse(
            "{\"hits\":true,\"misses\":0,\"entries\":0,\"evictions\":0,\"capacity\":1}",
        )
        .unwrap();
        let err = CacheStats::from_json(&value).unwrap_err();
        assert!(err.message.contains("not a u64"));
    }
}
