//! The shared experiment execution pipeline.
//!
//! Every figure and table of the paper's evaluation boils down to the same
//! operation: simulate a set of (workload, design) cells, possibly under a
//! custom kernel configuration, and post-process the resulting
//! [`SimReport`]s. The seed code hand-rolled that double loop in every
//! experiment module, re-simulating identical cells across figures (Fig. 5,
//! Fig. 6 and the area/energy table all need the same 9 × 8 grid, and the
//! Fig. 7 batch sweep re-runs the baseline at every batch size).
//!
//! [`ExperimentRunner`] centralizes the execution:
//!
//! * **Parallelism** — independent cells run concurrently on all cores via
//!   `rayon`-style parallel iterators; the simulation itself is
//!   deterministic, so parallel results are bit-identical to serial ones.
//! * **Memoization** — each cell result is cached under a key derived from
//!   the complete (design, workload, kernel) configuration, so a cell is
//!   simulated at most once per runner, however many experiments need it.
//! * **Declarative specs** — an [`ExperimentSpec`] names a workload set, a
//!   design set and an optional kernel override; the runner expands the
//!   cross product and returns one [`WorkloadRun`] per workload. Experiment
//!   modules reduce to spec + post-processing.
//!
//! Runners are built with the [`ExperimentRunnerBuilder`]
//! (`ExperimentRunner::builder()`), mirroring the typed config-builder
//! idiom of kubecl's `TilingScheme`.

use crate::cache::{InsertOutcome, LruCache};
use crate::json::{FromJson, JsonValue, ToJson};
use crate::key::CellKey;
use crate::prof::{self, Stage};
use crate::simulator::{DEFAULT_MATMUL_CAP, DEFAULT_SPEC_DEPTH};
use crate::{DesignPoint, SimError, SimReport, Simulator, WorkloadRun};
use rasa_trace::GemmKernelConfig;
use rasa_workloads::LayerSpec;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on the number of memoized cells a runner keeps resident.
///
/// The paper matrices need well under a hundred cells; the bound only
/// matters under serving traffic, where distinct shapes churn through the
/// cache and the LRU policy keeps the hot set resident.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// One simulation cell: a workload on a design point, optionally under a
/// non-default kernel configuration.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The design point to simulate.
    pub design: DesignPoint,
    /// The workload to run.
    pub workload: LayerSpec,
    /// Kernel override; `None` uses the runner's default kernel with the
    /// runner's matmul cap.
    pub kernel: Option<GemmKernelConfig>,
}

impl SimJob {
    /// A job for `workload` on `design` with the runner's default kernel.
    #[must_use]
    pub fn new(design: DesignPoint, workload: LayerSpec) -> Self {
        SimJob {
            design,
            workload,
            kernel: None,
        }
    }

    /// Overrides the kernel configuration (emission order, tiling, cap).
    #[must_use]
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// The kernel this job resolves to under a given default matmul cap:
    /// its explicit override, or the scheme-derived default kernel carrying
    /// the cap.
    #[must_use]
    pub fn resolved_kernel(&self, default_matmul_cap: Option<usize>) -> GemmKernelConfig {
        self.kernel.unwrap_or_else(|| GemmKernelConfig {
            max_matmuls: default_matmul_cap,
            ..GemmKernelConfig::default()
        })
    }

    /// The semantic identity of this job's simulation cell under a given
    /// default matmul cap: design + lowered GEMM shape + resolved kernel.
    ///
    /// This is the key [`ExperimentRunner`] memoizes under and the serving
    /// layer coalesces by, computable without a runner — the network
    /// router uses it to consistent-hash a request onto the shard whose
    /// cell cache is warm for the shape.
    ///
    /// The kernel half of the key is the kernel's `Debug` rendering, which
    /// covers every scheme axis (two kernels differing only in register
    /// block, loop order, scalar model or segment hint render differently)
    /// while default-scheme kernels keep the pre-scheme legacy text, so
    /// pinned golden cache dumps stay byte-stable.
    #[must_use]
    pub fn semantic_key(&self, default_matmul_cap: Option<usize>) -> String {
        let kernel = self.resolved_kernel(default_matmul_cap);
        render_semantic_key(&self.design, &self.workload, &kernel)
    }

    /// The interned form of [`semantic_key`](Self::semantic_key): the same
    /// bytes, rendered and hashed exactly once. This is what the runner
    /// memoizes under, the serving layer coalesces by and the router
    /// consistent-hashes — one rendering per request end-to-end.
    #[must_use]
    pub fn cell_key(&self, default_matmul_cap: Option<usize>) -> CellKey {
        CellKey::new(self.semantic_key(default_matmul_cap))
    }
}

/// Renders the semantic cell key text from borrowed parts — the single
/// definition of the key format, shared by [`SimJob::semantic_key`] and
/// the serving layer (which keys from a borrowed request without cloning
/// it into a job first).
pub(crate) fn render_semantic_key(
    design: &DesignPoint,
    workload: &LayerSpec,
    kernel: &GemmKernelConfig,
) -> String {
    format!("{design:?}|{:?}|{kernel:?}", workload.gemm_shape())
}

/// A declarative experiment: the (workload × design) matrix to simulate and
/// an optional kernel override shared by every cell.
///
/// Experiment modules build one of these and hand it to
/// [`ExperimentRunner::run_spec`]; the runner owns iteration order,
/// parallelism and caching, so the modules keep no loops of their own.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Human-readable experiment name (used in logs and error messages).
    pub name: &'static str,
    /// Workloads, in presentation order.
    pub workloads: Vec<LayerSpec>,
    /// Design points, in presentation order. The first design is the
    /// normalization baseline by convention.
    pub designs: Vec<DesignPoint>,
    /// Kernel override applied to every cell (`None` = runner default).
    pub kernel: Option<GemmKernelConfig>,
}

impl ExperimentSpec {
    /// Expands the (workload × design) cross product, workload-major: all
    /// designs of the first workload, then all designs of the second, …
    #[must_use]
    pub fn jobs(&self) -> Vec<SimJob> {
        self.workloads
            .iter()
            .flat_map(|workload| {
                self.designs.iter().map(|design| SimJob {
                    design: design.clone(),
                    workload: workload.clone(),
                    kernel: self.kernel,
                })
            })
            .collect()
    }

    /// The number of cells in the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len() * self.designs.len()
    }

    /// Whether the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cache effectiveness counters of an [`ExperimentRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cells answered from the memoization cache.
    pub hits: u64,
    /// Cells that had to be simulated.
    pub misses: u64,
    /// Distinct cells currently cached.
    pub entries: usize,
    /// Cells evicted by the LRU bound since construction (or the last
    /// [`clear_cache`](ExperimentRunner::clear_cache)).
    pub evictions: u64,
    /// Maximum resident cells (the LRU capacity).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Parallel, memoizing executor for (workload × design) simulation
/// matrices. See the [crate docs](crate) for the motivation.
///
/// The runner is `Sync`: one runner can be shared by concurrent experiment
/// calls, and all of them share the cell cache. Two threads racing on the
/// same uncached cell may both simulate it; the simulation is
/// deterministic, so either result is valid and the duplicate work is
/// bounded by one cell.
#[derive(Debug)]
pub struct ExperimentRunner {
    matmul_cap: Option<usize>,
    parallel: bool,
    streaming: bool,
    segment_size: usize,
    speculation: bool,
    spec_depth: usize,
    cache: Mutex<LruCache<CellKey, Arc<SimReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ExperimentRunner {
    /// A parallel runner with the default matmul cap.
    #[must_use]
    pub fn new() -> Self {
        ExperimentRunner::builder()
            .build()
            .expect("default runner configuration is valid")
    }

    /// Starts building a runner (kubecl-style typed config builder).
    #[must_use]
    pub fn builder() -> ExperimentRunnerBuilder {
        ExperimentRunnerBuilder::default()
    }

    /// The cap on simulated `rasa_mm` instructions per cell, if any.
    #[must_use]
    pub const fn matmul_cap(&self) -> Option<usize> {
        self.matmul_cap
    }

    /// Whether cells run concurrently (`false` = strict serial execution).
    #[must_use]
    pub const fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Whether cells run through the streaming trace→simulate pipeline
    /// (default) or the materialized path. Simulated statistics are
    /// bit-identical either way; only the [`crate::PipelineStats`]
    /// diagnostics differ.
    #[must_use]
    pub const fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// The target streamed-segment size in instructions.
    #[must_use]
    pub const fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Whether streamed cells may use the speculative fork/join segment
    /// scheduler (default). Like the transport settings, speculation never
    /// changes a simulated statistic — mispredicted segments replay
    /// sequentially — so this only trades wall-clock time for cores.
    #[must_use]
    pub const fn is_speculative(&self) -> bool {
        self.speculation
    }

    /// Speculative workers per fork/join wave.
    #[must_use]
    pub const fn spec_depth(&self) -> usize {
        self.spec_depth
    }

    /// Cache effectiveness counters since construction (or the last
    /// [`clear_cache`](Self::clear_cache)).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: cache.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: cache.capacity(),
        }
    }

    /// The maximum number of memoized cells kept resident.
    #[must_use]
    pub fn cache_capacity(&self) -> usize {
        self.cache.lock().expect("cache lock").capacity()
    }

    /// Drops every cached cell and resets the hit/miss/eviction counters.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Serializes the resident memoization cache as a JSON node: an array
    /// of `{"key", "report"}` objects sorted by key (so the document is
    /// deterministic even after parallel runs filled the cache in
    /// scheduler-dependent order).
    ///
    /// The `run_all` binary embeds this under `"cache": {"cells": ...}` in
    /// its `--json` results document; a later run can hand that document to
    /// [`warm_start_json`](Self::warm_start_json) to start with a hot
    /// cache.
    #[must_use]
    pub fn dump_cache_json(&self) -> JsonValue {
        let cache = self.cache.lock().expect("cache lock");
        let mut cells: Vec<(CellKey, JsonValue)> = cache
            .keys_by_recency()
            .into_iter()
            .map(|key| {
                let report = cache.peek(&key).expect("listed key is resident");
                (key, report.to_json())
            })
            .collect();
        drop(cache);
        // Keys serialize as their interned string form, so the document
        // is byte-identical to the pre-interning encoding.
        cells.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        JsonValue::Array(
            cells
                .into_iter()
                .map(|(key, report)| {
                    JsonValue::Object(vec![
                        ("key".into(), JsonValue::string(key.as_str())),
                        ("report".into(), report),
                    ])
                })
                .collect(),
        )
    }

    /// Warm-starts the memoization cache from a previously persisted
    /// document and returns the number of cells loaded.
    ///
    /// Accepts, in order of preference: a full `run_all --json` results
    /// document (cells under `"cache"."cells"`), an object with a
    /// `"cells"` member, or the bare cell array produced by
    /// [`dump_cache_json`](Self::dump_cache_json). Loaded cells count as
    /// neither hits nor misses; insertions beyond the capacity evict LRU
    /// cells as usual (and count as evictions). Keys embed the complete
    /// cell identity (design, lowered shape, kernel — including the matmul
    /// cap), so cells dumped under a different fidelity simply never match
    /// this runner's lookups: warm-starting is always safe, never wrong.
    ///
    /// The trace-transport settings (streaming on/off, segment size,
    /// speculation on/off and depth) are deliberately *not* part of the
    /// key — the simulated statistics are bit-identical across transports. A warmed cell therefore keeps the
    /// [`crate::PipelineStats`] diagnostics of the execution that
    /// originally produced it, which may describe a different transport
    /// than this runner's; every architectural metric is exact.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Json`] when the document holds no cell array or
    /// a cell fails to decode.
    pub fn warm_start_json(&self, document: &JsonValue) -> Result<usize, SimError> {
        let cells = document
            .get("cache")
            .and_then(|cache| cache.get("cells"))
            .or_else(|| document.get("cells"))
            .unwrap_or(document);
        let Some(cells) = cells.as_array() else {
            return Err(SimError::Json {
                reason: "warm-start document has no cache cell array".to_string(),
            });
        };
        let mut loaded = 0usize;
        for cell in cells {
            let key = cell
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| SimError::Json {
                    reason: "cache cell is missing its string 'key'".to_string(),
                })?
                .to_string();
            let report =
                SimReport::from_json(cell.get("report").ok_or_else(|| SimError::Json {
                    reason: format!("cache cell '{key}' is missing its 'report'"),
                })?)?;
            let outcome = self
                .cache
                .lock()
                .expect("cache lock")
                .insert(CellKey::new(key), Arc::new(report));
            if matches!(outcome, InsertOutcome::Evicted(..)) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            loaded += 1;
        }
        Ok(loaded)
    }

    /// The kernel a job resolves to: its explicit override, or the default
    /// kernel carrying the runner's matmul cap.
    fn resolve_kernel(&self, job: &SimJob) -> GemmKernelConfig {
        job.resolved_kernel(self.matmul_cap)
    }

    /// The semantic cache key of a job's simulation cell.
    ///
    /// Simulated cycle counts depend only on the design, the lowered GEMM
    /// shape and the kernel — not on the workload's display name — so the
    /// key is semantic: a re-batched `DLRM-1@b512` hits the cell `DLRM-1`
    /// already simulated at its native batch of 512. The derived Debug
    /// output covers every configuration field (floats print with
    /// round-trip precision), so the key is a complete identity of the
    /// cell. The serving layer batches requests by this same key, so
    /// requests coalesced into one batch share one simulation.
    ///
    /// The key comes back interned ([`CellKey`]): rendered and hashed
    /// once, reusable for cache probes, coalescing comparisons and ring
    /// placement without re-hashing.
    #[must_use]
    pub fn job_key(&self, job: &SimJob) -> CellKey {
        job.cell_key(self.matmul_cap)
    }

    /// Runs (or recalls) one cell under a key the caller already interned
    /// (`key` must be `self.job_key(job)`); the serving layer uses this to
    /// reuse the key it coalesced the batch by.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the underlying [`Simulator`].
    pub fn run_job_keyed(&self, job: &SimJob, key: &CellKey) -> Result<Arc<SimReport>, SimError> {
        debug_assert_eq!(key, &self.job_key(job), "key must belong to the job");
        let kernel = self.resolve_kernel(job);
        {
            let probe = prof::time(Stage::CacheProbe);
            let mut cache = self.cache.lock().expect("cache lock");
            let hit = cache.get(key).map(Arc::clone);
            drop(cache);
            drop(probe);
            if let Some(report) = hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Same numbers, possibly a different label: restamp the
                // workload name the caller asked for.
                return Ok(if report.workload == job.workload.name() {
                    report
                } else {
                    let mut relabelled = (*report).clone();
                    relabelled.workload = job.workload.name().to_string();
                    Arc::new(relabelled)
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let simulate = prof::time(Stage::Simulate);
        let report = Arc::new(
            Simulator::new(job.design.clone())?
                .with_kernel(kernel)?
                .with_streaming(self.streaming)
                .with_segment_size(self.segment_size)?
                .with_speculation(self.speculation)
                .with_spec_depth(self.spec_depth)?
                .run_layer(&job.workload)?,
        );
        drop(simulate);
        let outcome = self
            .cache
            .lock()
            .expect("cache lock")
            .insert(key.clone(), Arc::clone(&report));
        if matches!(outcome, InsertOutcome::Evicted(..)) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Runs (or recalls) one cell.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the underlying [`Simulator`].
    pub fn run_job(&self, job: &SimJob) -> Result<Arc<SimReport>, SimError> {
        self.run_job_keyed(job, &self.job_key(job))
    }

    /// Runs a batch of cells, in parallel when the runner is parallel, and
    /// returns the reports in job order.
    ///
    /// # Errors
    ///
    /// Returns the first simulation error in job order.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Result<Vec<Arc<SimReport>>, SimError> {
        if self.parallel {
            jobs.par_iter().map(|job| self.run_job(job)).collect()
        } else {
            jobs.iter().map(|job| self.run_job(job)).collect()
        }
    }

    /// Runs the full (workload × design) matrix of a spec and groups the
    /// reports into one [`WorkloadRun`] per workload (designs in spec
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for an empty matrix and
    /// propagates simulation errors.
    pub fn run_spec(&self, spec: &ExperimentSpec) -> Result<Vec<WorkloadRun>, SimError> {
        if spec.is_empty() {
            return Err(SimError::InvalidExperiment {
                reason: format!(
                    "experiment {} has an empty workload x design matrix",
                    spec.name
                ),
            });
        }
        let reports = self.run_jobs(&spec.jobs())?;
        Ok(reports
            .chunks(spec.designs.len())
            .zip(&spec.workloads)
            .map(|(chunk, workload)| WorkloadRun {
                workload: workload.name().to_string(),
                reports: chunk.iter().map(|r| (**r).clone()).collect(),
            })
            .collect())
    }

    /// Convenience wrapper: runs `workloads × designs` with the default
    /// kernel.
    ///
    /// # Errors
    ///
    /// Same as [`run_spec`](Self::run_spec).
    pub fn run_grid(
        &self,
        workloads: &[LayerSpec],
        designs: &[DesignPoint],
    ) -> Result<Vec<WorkloadRun>, SimError> {
        self.run_spec(&ExperimentSpec {
            name: "grid",
            workloads: workloads.to_vec(),
            designs: designs.to_vec(),
            kernel: None,
        })
    }
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

/// Builder for [`ExperimentRunner`], following the kubecl
/// `TilingSchemeBuilder` idiom: optional typed fields, validated at
/// [`build`](Self::build).
#[derive(Debug, Default)]
pub struct ExperimentRunnerBuilder {
    matmul_cap: Option<Option<usize>>,
    parallel: Option<bool>,
    streaming: Option<bool>,
    segment_size: Option<usize>,
    speculation: Option<bool>,
    spec_depth: Option<usize>,
    cache_capacity: Option<usize>,
}

impl ExperimentRunnerBuilder {
    /// Caps the simulated `rasa_mm` instructions per cell (`None` simulates
    /// every tile).
    #[must_use]
    pub fn with_matmul_cap(mut self, cap: Option<usize>) -> Self {
        self.matmul_cap = Some(cap);
        self
    }

    /// Selects parallel (default) or serial execution.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Forces strict serial execution (for determinism checks and
    /// debugging).
    #[must_use]
    pub fn serial(self) -> Self {
        self.with_parallel(false)
    }

    /// Selects the streaming trace→simulate pipeline (default) or the
    /// materialized path for every cell.
    #[must_use]
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = Some(streaming);
        self
    }

    /// Overrides the target streamed-segment size in instructions.
    #[must_use]
    pub fn with_segment_size(mut self, segment_size: usize) -> Self {
        self.segment_size = Some(segment_size);
        self
    }

    /// Enables (default) or disables the speculative fork/join segment
    /// scheduler for streamed cells.
    #[must_use]
    pub fn with_speculation(mut self, speculation: bool) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Overrides the number of speculative workers per fork/join wave.
    #[must_use]
    pub fn with_spec_depth(mut self, spec_depth: usize) -> Self {
        self.spec_depth = Some(spec_depth);
        self
    }

    /// Bounds the memoization cache to `capacity` resident cells (default
    /// [`DEFAULT_CACHE_CAPACITY`]); least-recently-used cells are evicted.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Validates the configuration and builds the runner.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for a zero matmul cap or a
    /// zero cache capacity.
    pub fn build(self) -> Result<ExperimentRunner, SimError> {
        let matmul_cap = self.matmul_cap.unwrap_or(Some(DEFAULT_MATMUL_CAP));
        if matmul_cap == Some(0) {
            return Err(SimError::InvalidExperiment {
                reason: "matmul cap must be at least 1 (or None for uncapped)".to_string(),
            });
        }
        let cache_capacity = self.cache_capacity.unwrap_or(DEFAULT_CACHE_CAPACITY);
        if cache_capacity == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "cache capacity must be at least 1".to_string(),
            });
        }
        let segment_size = self
            .segment_size
            .unwrap_or(rasa_trace::DEFAULT_SEGMENT_SIZE);
        if segment_size == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "segment size must be at least one instruction".to_string(),
            });
        }
        let spec_depth = self.spec_depth.unwrap_or(DEFAULT_SPEC_DEPTH);
        if spec_depth == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "speculation depth must be at least one worker".to_string(),
            });
        }
        Ok(ExperimentRunner {
            matmul_cap,
            parallel: self.parallel.unwrap_or(true),
            streaming: self.streaming.unwrap_or(true),
            segment_size,
            speculation: self.speculation.unwrap_or(true),
            spec_depth,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_workloads::WorkloadSuite;

    fn small_grid() -> (Vec<LayerSpec>, Vec<DesignPoint>) {
        let suite = WorkloadSuite::mlperf();
        let workloads = vec![
            suite.layer("DLRM-1").unwrap().clone(),
            suite.layer("BERT-1").unwrap().clone(),
        ];
        let designs = vec![DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
        (workloads, designs)
    }

    #[test]
    fn builder_validates_and_defaults() {
        let runner = ExperimentRunner::new();
        assert_eq!(runner.matmul_cap(), Some(4096));
        assert!(runner.is_parallel());
        let serial = ExperimentRunner::builder()
            .with_matmul_cap(Some(64))
            .serial()
            .build()
            .unwrap();
        assert_eq!(serial.matmul_cap(), Some(64));
        assert!(!serial.is_parallel());
        assert!(matches!(
            ExperimentRunner::builder().with_matmul_cap(Some(0)).build(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn builder_plumbs_speculation_settings() {
        let runner = ExperimentRunner::new();
        assert!(runner.is_speculative());
        assert_eq!(runner.spec_depth(), DEFAULT_SPEC_DEPTH);
        let tuned = ExperimentRunner::builder()
            .with_speculation(false)
            .with_spec_depth(3)
            .build()
            .unwrap();
        assert!(!tuned.is_speculative());
        assert_eq!(tuned.spec_depth(), 3);
        assert!(matches!(
            ExperimentRunner::builder().with_spec_depth(0).build(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn spec_expands_workload_major() {
        let (workloads, designs) = small_grid();
        let spec = ExperimentSpec {
            name: "test",
            workloads,
            designs,
            kernel: None,
        };
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        assert_eq!(spec.len(), 4);
        assert!(!spec.is_empty());
        assert_eq!(jobs[0].workload.name(), "DLRM-1");
        assert_eq!(jobs[0].design.name(), "BASELINE");
        assert_eq!(jobs[1].workload.name(), "DLRM-1");
        assert_eq!(jobs[1].design.name(), "RASA-DMDB-WLS");
        assert_eq!(jobs[2].workload.name(), "BERT-1");
    }

    #[test]
    fn grid_results_group_by_workload_in_design_order() {
        let (workloads, designs) = small_grid();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let runs = runner.run_grid(&workloads, &designs).unwrap();
        assert_eq!(runs.len(), 2);
        for (run, layer) in runs.iter().zip(&workloads) {
            assert_eq!(run.workload, layer.name());
            assert_eq!(run.reports.len(), 2);
            assert_eq!(run.reports[0].design, "BASELINE");
            assert_eq!(run.reports[1].design, "RASA-DMDB-WLS");
            assert!(run.baseline().is_some());
        }
    }

    #[test]
    fn cache_memoizes_identical_cells() {
        let (workloads, designs) = small_grid();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let first = runner.run_grid(&workloads, &designs).unwrap();
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 4);

        let second = runner.run_grid(&workloads, &designs).unwrap();
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 4, "second run must be fully cached");
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(first, second);

        runner.clear_cache();
        let stats = runner.cache_stats();
        assert_eq!(
            stats,
            CacheStats {
                capacity: DEFAULT_CACHE_CAPACITY,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn bounded_cache_evicts_lru_and_re_misses() {
        let suite = WorkloadSuite::mlperf();
        let a = suite.layer("DLRM-1").unwrap().clone();
        let b = suite.layer("DLRM-2").unwrap().clone();
        let c = suite.layer("BERT-1").unwrap().clone();
        let design = DesignPoint::baseline();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(64))
            .with_cache_capacity(2)
            .serial()
            .build()
            .unwrap();
        assert_eq!(runner.cache_capacity(), 2);

        // Fill the two slots, then overflow: `a` is LRU and must go.
        runner
            .run_job(&SimJob::new(design.clone(), a.clone()))
            .unwrap();
        runner
            .run_job(&SimJob::new(design.clone(), b.clone()))
            .unwrap();
        runner
            .run_job(&SimJob::new(design.clone(), c.clone()))
            .unwrap();
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1, "third insert must evict the LRU cell");
        assert_eq!(stats.entries, 2, "capacity bound must be respected");
        assert_eq!(stats.capacity, 2);

        // `b` and `c` are resident (hits); `a` was evicted and re-misses.
        runner.run_job(&SimJob::new(design.clone(), b)).unwrap();
        runner.run_job(&SimJob::new(design.clone(), c)).unwrap();
        assert_eq!(runner.cache_stats().hits, 2);
        runner.run_job(&SimJob::new(design, a)).unwrap();
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 4, "evicted cell must be re-simulated");
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn cache_warm_start_round_trips_through_json() {
        let (workloads, designs) = small_grid();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let first = runner.run_grid(&workloads, &designs).unwrap();
        assert_eq!(runner.cache_stats().misses, 4);

        // Dump through text (as `run_all --json` would persist it) and
        // warm-start a fresh runner with the same fidelity.
        let text = JsonValue::Object(vec![(
            "cache".into(),
            JsonValue::Object(vec![("cells".into(), runner.dump_cache_json())]),
        )])
        .to_string_pretty();
        let document = JsonValue::parse(&text).unwrap();

        let warmed = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        assert_eq!(warmed.warm_start_json(&document).unwrap(), 4);
        let stats = warmed.cache_stats();
        assert_eq!(stats.entries, 4);
        assert_eq!((stats.hits, stats.misses), (0, 0), "loading is not a hit");

        // The warmed runner answers the whole grid from the cache, with
        // results identical to the original simulation.
        let second = warmed.run_grid(&workloads, &designs).unwrap();
        let stats = warmed.cache_stats();
        assert_eq!(stats.misses, 0, "warm-started grid must be fully cached");
        assert_eq!(stats.hits, 4);
        assert_eq!(first, second);

        // The bare array form loads too, and insertions respect the LRU
        // capacity bound.
        let tiny = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .with_cache_capacity(2)
            .build()
            .unwrap();
        assert_eq!(tiny.warm_start_json(&runner.dump_cache_json()).unwrap(), 4);
        let stats = tiny.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn warm_start_rejects_malformed_documents() {
        let runner = ExperimentRunner::new();
        for text in [
            "{\"schema\":\"rasa-run-all/1\"}",
            "[{\"report\":{}}]",
            "[{\"key\":\"k\"}]",
            "[{\"key\":\"k\",\"report\":{\"design\":\"X\"}}]",
        ] {
            let document = JsonValue::parse(text).unwrap();
            assert!(
                matches!(
                    runner.warm_start_json(&document),
                    Err(SimError::Json { .. })
                ),
                "{text} must be rejected"
            );
        }
        // A mismatched-fidelity dump loads fine but never hits: the key
        // embeds the kernel, so a lookup under this runner's cap misses.
        let (workloads, designs) = small_grid();
        let other = ExperimentRunner::builder()
            .with_matmul_cap(Some(64))
            .build()
            .unwrap();
        other
            .run_job(&SimJob::new(designs[0].clone(), workloads[0].clone()))
            .unwrap();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        assert_eq!(runner.warm_start_json(&other.dump_cache_json()).unwrap(), 1);
        runner
            .run_job(&SimJob::new(designs[0].clone(), workloads[0].clone()))
            .unwrap();
        assert_eq!(runner.cache_stats().misses, 1, "different cap, no hit");
    }

    #[test]
    fn zero_cache_capacity_is_rejected() {
        assert!(matches!(
            ExperimentRunner::builder().with_cache_capacity(0).build(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn cache_key_is_semantic_not_nominal() {
        // A re-batched layer at its native batch lowers to the same GEMM,
        // so it must hit the cached cell — relabelled with the new name.
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let rebatched = layer.with_batch(layer.batch());
        assert_ne!(layer.name(), rebatched.name());
        assert_eq!(layer.gemm_shape(), rebatched.gemm_shape());

        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let design = DesignPoint::baseline();
        let original = runner.run_job(&SimJob::new(design.clone(), layer)).unwrap();
        let relabelled = runner
            .run_job(&SimJob::new(design, rebatched.clone()))
            .unwrap();
        let stats = runner.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(relabelled.workload, rebatched.name());
        assert_eq!(relabelled.core_cycles, original.core_cycles);
        assert_eq!(relabelled.cpu, original.cpu);
    }

    #[test]
    fn parallel_and_serial_results_are_bit_identical() {
        let (workloads, designs) = small_grid();
        let parallel = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let serial = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .serial()
            .build()
            .unwrap();
        let p = parallel.run_grid(&workloads, &designs).unwrap();
        let s = serial.run_grid(&workloads, &designs).unwrap();
        assert_eq!(p, s);
    }

    #[test]
    fn kernel_overrides_key_the_cache_separately() {
        use rasa_trace::{GemmKernelConfig, MatmulOrder};
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();

        let mut paired = GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::WeightPaired);
        paired.max_matmuls = Some(96);
        let mut interleaved =
            GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::Interleaved);
        interleaved.max_matmuls = Some(96);

        let design = DesignPoint::rasa_wlbp();
        let a = runner
            .run_job(&SimJob::new(design.clone(), layer.clone()).with_kernel(paired))
            .unwrap();
        let b = runner
            .run_job(&SimJob::new(design.clone(), layer.clone()).with_kernel(interleaved))
            .unwrap();
        assert_eq!(
            runner.cache_stats().misses,
            2,
            "distinct kernels, distinct cells"
        );
        // WLBP benefits from paired weight reuse, so the orders must differ.
        assert!(a.core_cycles < b.core_cycles);

        // The default kernel at the runner cap resolves to the same cell as
        // the explicit weight-paired kernel above (amx_like's default
        // order), so both lookups are cache hits.
        let mut default_kernel = GemmKernelConfig::amx_like();
        default_kernel.max_matmuls = Some(96);
        let c = runner
            .run_job(&SimJob::new(design.clone(), layer.clone()))
            .unwrap();
        let d = runner
            .run_job(&SimJob::new(design, layer).with_kernel(default_kernel))
            .unwrap();
        assert_eq!(runner.cache_stats().misses, 2);
        assert_eq!(runner.cache_stats().hits, 2);
        assert_eq!(c, a);
        assert_eq!(c, d);
    }

    #[test]
    fn empty_spec_is_rejected() {
        let runner = ExperimentRunner::new();
        let err = runner.run_grid(&[], &[DesignPoint::baseline()]);
        assert!(matches!(err, Err(SimError::InvalidExperiment { .. })));
    }
}
