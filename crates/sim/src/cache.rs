//! A hand-rolled bounded LRU cache for memoized simulation cells.
//!
//! The [`ExperimentRunner`](crate::ExperimentRunner) originally memoized
//! cells in an unbounded `HashMap`, which is fine for the fixed paper
//! matrices but not for a serving workload where millions of distinct GEMM
//! shapes churn through the process. [`LruCache`] bounds the resident set:
//! every hit promotes the entry to most-recently-used, and inserting into a
//! full cache evicts the least-recently-used entry (returned to the caller
//! so eviction statistics can be kept).
//!
//! The implementation is an index-based doubly-linked list over a slab of
//! nodes plus a `HashMap` from key to slab index, giving O(1) lookup,
//! promotion, insertion and eviction without any unsafe code. The vendored
//! dependency set has no `lru` crate, so the structure is implemented here
//! (~a hundred lines) and unit-tested exhaustively below.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index meaning "no node".
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
///
/// Keys are cloned once on insertion (they live both in the slab and in the
/// index map's ownership via clone); values are moved in and returned on
/// eviction.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    /// Slab of nodes; freed slots are recycled through `free`.
    nodes: Vec<Node<K, V>>,
    /// Indices of vacant slab slots.
    free: Vec<usize>,
    /// Key -> slab index.
    index: HashMap<K, usize>,
    /// Most-recently-used node, or `NIL` when empty.
    head: usize,
    /// Least-recently-used node, or `NIL` when empty.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; callers (the runner builder) validate
    /// capacities before construction.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache capacity must be at least 1");
        LruCache {
            capacity,
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// The maximum number of resident entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Unlinks node `i` from the recency list (does not free it).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most-recently-used position).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks `key` up and promotes it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.index.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.nodes[i].value)
    }

    /// Looks `key` up without disturbing the recency order.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&i| &self.nodes[i].value)
    }

    /// Whether `key` is resident (no recency update).
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key -> value` as most-recently-used.
    ///
    /// Returns the evicted least-recently-used `(key, value)` pair when the
    /// insertion pushed the cache past capacity, or the replaced value when
    /// `key` was already resident (counted as a replacement, not an
    /// eviction, by callers that track stats).
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome<K, V> {
        if let Some(&i) = self.index.get(&key) {
            let old = std::mem::replace(&mut self.nodes[i].value, value);
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return InsertOutcome::Replaced(old);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        if self.index.len() == self.capacity {
            // Full: recycle the least-recently-used slot in place — the new
            // node is swapped in, the old payload is swapped out and
            // returned to the caller.
            let lru = self.tail;
            self.unlink(lru);
            let old = std::mem::replace(&mut self.nodes[lru], node);
            self.index.remove(&old.key);
            self.index.insert(key, lru);
            self.link_front(lru);
            return InsertOutcome::Evicted(old.key, old.value);
        }
        let i = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.index.insert(key, i);
        self.link_front(i);
        InsertOutcome::Inserted
    }

    /// Drops every entry (capacity is unchanged).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently-used (test/diagnostic helper).
    #[must_use]
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(self.nodes[i].key.clone());
            i = self.nodes[i].next;
        }
        keys
    }
}

/// The effect of an [`LruCache::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome<K, V> {
    /// The key was new and the cache had room.
    Inserted,
    /// The key was already resident; its previous value is returned.
    Replaced(V),
    /// The key was new and the least-recently-used entry was evicted.
    Evicted(K, V),
}

impl<K, V> InsertOutcome<K, V> {
    /// Whether this insertion evicted another entry.
    #[must_use]
    pub fn is_eviction(&self) -> bool {
        matches!(self, InsertOutcome::Evicted(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn insert_get_and_promotion() {
        let mut cache = LruCache::new(3);
        assert!(cache.is_empty());
        assert_eq!(cache.insert("a", 1), InsertOutcome::Inserted);
        assert_eq!(cache.insert("b", 2), InsertOutcome::Inserted);
        assert_eq!(cache.insert("c", 3), InsertOutcome::Inserted);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.keys_by_recency(), vec!["c", "b", "a"]);

        // A hit promotes to most-recently-used.
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.keys_by_recency(), vec!["a", "c", "b"]);

        // Peek does not disturb recency.
        assert_eq!(cache.peek(&"b"), Some(&2));
        assert_eq!(cache.keys_by_recency(), vec!["a", "c", "b"]);
        assert!(cache.contains(&"b"));
        assert!(!cache.contains(&"x"));
        assert_eq!(cache.get(&"x"), None);
    }

    #[test]
    fn capacity_bound_is_respected_and_lru_is_evicted() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "one");
        cache.insert(2, "two");
        // 1 is LRU; inserting a third key evicts it.
        let outcome = cache.insert(3, "three");
        assert_eq!(outcome, InsertOutcome::Evicted(1, "one"));
        assert!(outcome.is_eviction());
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(&1));

        // Touch 2 so 3 becomes LRU, then insert again.
        assert_eq!(cache.get(&2), Some(&"two"));
        assert_eq!(cache.insert(4, "four"), InsertOutcome::Evicted(3, "three"));
        assert_eq!(cache.keys_by_recency(), vec![4, 2]);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.insert("a", 10), InsertOutcome::Replaced(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(&"a"), Some(&10));
        assert_eq!(cache.keys_by_recency(), vec!["a", "b"]);
        // Replacement is not an eviction.
        assert!(!InsertOutcome::<&str, i32>::Replaced(1).is_eviction());
    }

    #[test]
    fn evicted_slot_is_recycled() {
        let mut cache = LruCache::new(1);
        for i in 0..100 {
            cache.insert(i, i * 10);
            assert_eq!(cache.len(), 1);
        }
        // Only one slab slot plus no free-list growth: the slab never
        // exceeds the capacity.
        assert!(cache.nodes.len() <= 1);
        assert_eq!(cache.peek(&99), Some(&990));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut cache = LruCache::new(4);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.insert("c", 3), InsertOutcome::Inserted);
        assert_eq!(cache.keys_by_recency(), vec!["c"]);
    }

    #[test]
    fn single_capacity_cache_works() {
        let mut cache = LruCache::new(1);
        assert_eq!(cache.insert("a", 1), InsertOutcome::Inserted);
        assert_eq!(cache.insert("b", 2), InsertOutcome::Evicted("a", 1));
        assert_eq!(cache.get(&"b"), Some(&2));
        assert_eq!(cache.get(&"a"), None);
    }
}
