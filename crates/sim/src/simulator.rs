use crate::{DesignPoint, PipelineStats, SimError, SimReport};
use rasa_cpu::{CpuCore, CpuStats, SchedStats, StreamStats};
use rasa_isa::{Program, ProgramSegment};
use rasa_numeric::GemmShape;
use rasa_power::{EngineActivitySummary, PowerReport};
use rasa_systolic::MatrixEngine;
use rasa_trace::{
    GemmKernelConfig, ProgramSource, TraceError, TraceGenerator, DEFAULT_SEGMENT_SIZE,
};
use rasa_workloads::LayerSpec;
use rayon::prelude::*;
use std::ops::Range;
use std::sync::mpsc;

/// Default cap on the number of `rasa_mm` instructions simulated per
/// workload. The Table I layers contain up to hundreds of thousands of
/// register tiles; simulating a few thousand reaches steady state, and the
/// full-workload runtime is extrapolated at the observed throughput (the
/// [`SimReport`] records both numbers).
pub(crate) const DEFAULT_MATMUL_CAP: usize = 4096;

/// Segments buffered in the bounded producer→consumer channel of a
/// streamed run. Together with the shard wave this bounds the resident
/// trace to a handful of segments, whatever the workload size.
const STREAM_CHANNEL_SEGMENTS: usize = 4;

/// Register-block shards generated concurrently per wave when an uncapped
/// trace is fanned out over the worker pool. Small on purpose: a streamed
/// cell may itself be one job of an already-parallel experiment matrix.
const SHARD_WAVE: usize = 4;

/// End-to-end simulator for one design point.
///
/// A `Simulator` owns the trace generator and the CPU/engine configuration;
/// each `run_*` call generates the workload trace, executes it on a fresh
/// core and returns a [`SimReport`].
///
/// By default the trace→simulate path is a **streaming pipeline**: a
/// producer thread generates bounded instruction segments (in parallel
/// register-block shards when the trace is uncapped) into a bounded
/// channel while the resumable core consumes them, so trace generation
/// overlaps timing simulation and the resident trace stays O(segment)
/// instead of O(workload). The simulated statistics are bit-identical to
/// the materialized path ([`Simulator::with_streaming`]`(false)`), which is
/// retained for A/B comparisons; [`SimReport::pipeline`] records which path
/// ran and what it kept resident.
#[derive(Debug, Clone)]
pub struct Simulator {
    design: DesignPoint,
    generator: TraceGenerator,
    streaming: bool,
    segment_size: usize,
}

impl Simulator {
    /// Creates a simulator for a design point with the default trace
    /// generator, matmul cap and streaming pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid
    /// for the ISA (it never is for the built-in design points).
    pub fn new(design: DesignPoint) -> Result<Self, SimError> {
        let generator = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(DEFAULT_MATMUL_CAP))?;
        Ok(Simulator {
            design,
            generator,
            streaming: true,
            segment_size: DEFAULT_SEGMENT_SIZE,
        })
    }

    /// Overrides the cap on simulated `rasa_mm` instructions (`None` removes
    /// it and simulates every tile of the workload).
    ///
    /// The cap lives in the kernel configuration — the single source of
    /// truth the trace generator, the cache keys and
    /// [`Simulator::matmul_cap`] all read.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the resulting kernel configuration is
    /// invalid (a cap of zero).
    pub fn with_matmul_cap(mut self, cap: Option<usize>) -> Result<Self, SimError> {
        let mut kernel = *self.generator.kernel();
        kernel.max_matmuls = cap;
        self.generator = self.generator.with_kernel(kernel)?;
        Ok(self)
    }

    /// Overrides the full kernel configuration (tiling, scalar overhead,
    /// `rasa_mm` emission order and cap) used to generate traces — the hook
    /// the kernel-blocking ablation uses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid for
    /// the ISA.
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Result<Self, SimError> {
        self.generator = self.generator.with_kernel(kernel)?;
        Ok(self)
    }

    /// Selects the streaming pipeline (default) or the materialized
    /// generate-then-simulate path. Both produce bit-identical simulated
    /// statistics; the materialized path is the A/B reference for the
    /// streaming pipeline's memory and overlap gains.
    #[must_use]
    pub const fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Overrides the target streamed-segment size in instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for a zero segment size.
    pub fn with_segment_size(mut self, segment_size: usize) -> Result<Self, SimError> {
        if segment_size == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "segment size must be at least one instruction".to_string(),
            });
        }
        self.segment_size = segment_size;
        Ok(self)
    }

    /// The design point being simulated.
    #[must_use]
    pub const fn design(&self) -> &DesignPoint {
        &self.design
    }

    /// The configured matmul cap, if any — read from the kernel
    /// configuration, its single source of truth.
    #[must_use]
    pub fn matmul_cap(&self) -> Option<usize> {
        self.generator.kernel().max_matmuls
    }

    /// Whether runs use the streaming pipeline.
    #[must_use]
    pub const fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// The target streamed-segment size in instructions.
    #[must_use]
    pub const fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Simulates an arbitrary GEMM.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_gemm(&self, shape: GemmShape) -> Result<SimReport, SimError> {
        let name = format!("GEMM-{}x{}x{}", shape.m, shape.k, shape.n);
        self.run_shape(shape, &name)
    }

    /// Simulates one DNN layer (convolutions are lowered via im2col).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        self.run_shape(layer.gemm_shape(), layer.name())
    }

    /// Simulates one DNN layer on the cycle-stepping **reference** core
    /// ([`CpuCore::run_reference`]) instead of the event-driven scheduler.
    ///
    /// The architectural statistics (`report.cpu`) must be bit-identical to
    /// [`Simulator::run_layer`]; the scheduler counters (`report.sched`)
    /// are zero because the reference loop does not use the event heap.
    /// This exists for parity checks and the `run_all` timing comparison.
    /// The reference core always consumes a materialized program.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer_reference(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        let shape = layer.gemm_shape();
        let program = self.generator.gemm(shape, layer.name())?;
        let total = self.generator.matmul_count(shape)?;
        self.run_program_on(&program, total as u64, layer.name(), true)
    }

    /// Generates and simulates `shape` under this simulator's configured
    /// pipeline (streamed or materialized).
    fn run_shape(&self, shape: GemmShape, name: &str) -> Result<SimReport, SimError> {
        let total = self.generator.matmul_count(shape)? as u64;
        if self.streaming {
            self.run_streamed(shape, name, total)
        } else {
            let program = self.generator.gemm(shape, name)?;
            self.run_program_on(&program, total, name, false)
        }
    }

    /// Runs an already-generated program, extrapolating to `total_matmuls`
    /// when the program is a truncated trace of a larger workload.
    ///
    /// # Errors
    ///
    /// Propagates CPU-model errors.
    pub fn run_program(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
    ) -> Result<SimReport, SimError> {
        self.run_program_on(program, total_matmuls, workload, false)
    }

    fn run_program_on(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
        reference: bool,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let mut core = CpuCore::new(*self.design.cpu(), engine);
        let cpu_stats = if reference {
            core.run_reference(program)?
        } else {
            core.run(program)?
        };
        let sched = *core.sched_stats();
        // Both materialized paths hold (and feed) the whole program at
        // once: one segment, everything resident.
        let pipeline = PipelineStats {
            streamed: false,
            segments: 1,
            fed_instructions: program.len() as u64,
            peak_resident_instructions: program.len() as u64,
        };
        Ok(self.report(cpu_stats, sched, pipeline, total_matmuls, workload))
    }

    /// The streaming trace→simulate pipeline: a producer thread generates
    /// bounded segments into a bounded channel while the resumable core
    /// consumes them. Uncapped traces are additionally fanned out as
    /// register-block shards generated in parallel waves through the rayon
    /// pool, so a single heavy `--full` workload no longer serializes its
    /// whole trace generation behind one thread.
    fn run_streamed(
        &self,
        shape: GemmShape,
        name: &str,
        total_matmuls: u64,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let mut core = CpuCore::new(*self.design.cpu(), engine);
        let generator = &self.generator;
        let segment_size = self.segment_size;
        let blocks = generator.block_count(shape)?;
        // Shards only pay off when the trace is uncapped (the cap is a
        // sequential prefix property) and wide enough to split.
        let shard_blocks = if generator.kernel().max_matmuls.is_none() && blocks > SHARD_WAVE {
            Some(self.blocks_per_shard(shape, segment_size)?)
        } else {
            None
        };

        let (cpu_stats, sched, stream) = std::thread::scope(
            |scope| -> Result<(CpuStats, SchedStats, StreamStats), SimError> {
                let (tx, rx) = mpsc::sync_channel::<Result<ProgramSegment, TraceError>>(
                    STREAM_CHANNEL_SEGMENTS,
                );
                scope.spawn(move || {
                    let outcome = produce_segments(
                        generator,
                        shape,
                        name,
                        blocks,
                        shard_blocks,
                        segment_size,
                        &tx,
                    );
                    if let Err(error) = outcome {
                        // The consumer surfaces the error; if it already
                        // hung up, there is nobody left to care.
                        let _ = tx.send(Err(error));
                    }
                });
                let mut run = core.begin_run(generator.isa())?;
                for message in rx {
                    let segment = message?;
                    core.feed_segment(&mut run, &segment)?;
                }
                let cpu_stats = core.run_to_quiescence(run)?;
                Ok((cpu_stats, *core.sched_stats(), *core.stream_stats()))
            },
        )?;

        let pipeline = PipelineStats {
            streamed: true,
            segments: stream.segments,
            fed_instructions: stream.fed_instructions,
            peak_resident_instructions: stream.peak_resident as u64,
        };
        Ok(self.report(cpu_stats, sched, pipeline, total_matmuls, name))
    }

    /// Register blocks per generation shard: sized so one shard amounts to
    /// a couple of segments, derived deterministically from the shape (so
    /// segment boundaries — and hence pipeline statistics — do not depend
    /// on the machine's parallelism).
    fn blocks_per_shard(&self, shape: GemmShape, segment_size: usize) -> Result<usize, SimError> {
        let kt = rasa_numeric::TileGrid::new(shape, self.generator.kernel().tiling)?.k_tiles();
        // Upper bound on one full 2×2 block: 4 accumulator loads and
        // stores, plus per K-step up to 4 operand loads, 4 matmuls and 4
        // scalar/branch overhead instructions.
        let block_len = 8 + 12 * kt;
        Ok((2 * segment_size).div_ceil(block_len).max(1))
    }

    fn report(
        &self,
        cpu_stats: CpuStats,
        sched: SchedStats,
        pipeline: PipelineStats,
        total_matmuls: u64,
        workload: &str,
    ) -> SimReport {
        let simulated_matmuls = cpu_stats.retired_matmuls;
        let simulated_cycles = cpu_stats.cycles;
        let core_cycles = if simulated_matmuls > 0 && total_matmuls > simulated_matmuls {
            // Extrapolate at the observed steady-state throughput.
            let per_mm = simulated_cycles as f64 / simulated_matmuls as f64;
            (per_mm * total_matmuls as f64).round() as u64
        } else {
            simulated_cycles
        };

        let activity = EngineActivitySummary::from_engine_stats(&cpu_stats.engine);
        let power = PowerReport::new(self.design.systolic(), &activity, simulated_cycles);

        SimReport {
            design: self.design.name().to_string(),
            workload: workload.to_string(),
            core_cycles,
            simulated_core_cycles: simulated_cycles,
            simulated_matmuls,
            total_matmuls: total_matmuls.max(simulated_matmuls),
            runtime_seconds: self.design.cpu().cycles_to_seconds(core_cycles),
            cpu: cpu_stats,
            sched,
            pipeline,
            power,
        }
    }
}

/// Producer half of the streaming pipeline: pushes the trace of `shape`
/// into `tx` as validated segments, either sequentially or as
/// wave-parallel register-block shards. A send failure means the consumer
/// hung up (success or error); either way there is nothing left to do.
fn produce_segments(
    generator: &TraceGenerator,
    shape: GemmShape,
    name: &str,
    blocks: usize,
    shard_blocks: Option<usize>,
    segment_size: usize,
    tx: &mpsc::SyncSender<Result<ProgramSegment, TraceError>>,
) -> Result<(), TraceError> {
    let Some(shard_blocks) = shard_blocks else {
        let mut stream = generator.gemm_stream(shape, name, segment_size)?;
        while let Some(segment) = stream.next_segment()? {
            if tx.send(Ok(segment)).is_err() {
                return Ok(());
            }
        }
        return Ok(());
    };

    // Wave-parallel sharding: generate SHARD_WAVE shards concurrently,
    // then forward their segments in block order while the core simulates.
    // Memory stays bounded by (wave + channel) segments.
    let mut start = 0usize;
    while start < blocks {
        let ranges: Vec<Range<usize>> = (0..SHARD_WAVE)
            .map(|i| {
                let lo = (start + i * shard_blocks).min(blocks);
                let hi = (start + (i + 1) * shard_blocks).min(blocks);
                lo..hi
            })
            .filter(|r| !r.is_empty())
            .collect();
        start = (start + SHARD_WAVE * shard_blocks).min(blocks);
        let wave: Result<Vec<Vec<ProgramSegment>>, TraceError> = ranges
            .par_iter()
            .map(|range| {
                generator
                    .gemm_blocks(shape, name, range.clone(), segment_size)?
                    .collect()
            })
            .collect();
        for shard in wave? {
            for segment in shard {
                if tx.send(Ok(segment)).is_err() {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_workloads::WorkloadSuite;

    #[test]
    fn small_gemm_runs_exactly() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        let report = sim.run_gemm(GemmShape::new(64, 64, 64)).unwrap();
        assert_eq!(report.total_matmuls, 32);
        assert_eq!(report.simulated_matmuls, 32);
        assert!(!report.is_extrapolated());
        // 32 serialized matmuls at 380 core cycles each dominate the run.
        assert!(report.core_cycles > 32 * 380);
        assert!(report.runtime_seconds > 0.0);
    }

    #[test]
    fn large_layer_is_extrapolated() {
        let sim = Simulator::new(DesignPoint::rasa_dmdb_wls())
            .unwrap()
            .with_matmul_cap(Some(512))
            .unwrap();
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap();
        let report = sim.run_layer(layer).unwrap();
        assert!(report.is_extrapolated());
        assert_eq!(
            report.total_matmuls,
            (512 / 16 * 1024 / 32 * 1024 / 16) as u64
        );
        assert!(report.core_cycles > report.simulated_core_cycles);
        assert_eq!(report.workload, "DLRM-1");
    }

    #[test]
    fn designs_preserve_the_expected_ordering_on_a_layer() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("BERT-1").unwrap();
        let mut cycles = Vec::new();
        for design in [
            DesignPoint::baseline(),
            DesignPoint::rasa_pipe(),
            DesignPoint::rasa_wlbp(),
            DesignPoint::rasa_dm_wlbp(),
            DesignPoint::rasa_db_wls(),
            DesignPoint::rasa_dmdb_wls(),
        ] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(768))
                .unwrap();
            cycles.push(sim.run_layer(layer).unwrap().core_cycles);
        }
        for pair in cycles.windows(2) {
            assert!(pair[0] >= pair[1], "expected improvement: {cycles:?}");
        }
        // End-to-end speedup of the best design is large.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn reference_core_matches_event_driven_core() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap();
        for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(256))
                .unwrap();
            let event = sim.run_layer(layer).unwrap();
            let reference = sim.run_layer_reference(layer).unwrap();
            assert_eq!(event.cpu, reference.cpu, "architectural stats diverge");
            assert_eq!(event.core_cycles, reference.core_cycles);
            // The event-driven core reports scheduler activity, the
            // reference loop reports none.
            assert!(event.sched.completion_events > 0);
            assert!(event.sched.skip_rate() > 0.0);
            assert_eq!(reference.sched, rasa_cpu::SchedStats::default());
            // The flat summary surfaces the event counts.
            let summary = event.summary();
            assert_eq!(summary.sched_events, event.sched.completion_events);
            assert_eq!(summary.visited_cycles, event.sched.visited_cycles);
        }
    }

    #[test]
    fn streamed_and_materialized_paths_are_bit_identical() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap();
        for (cap, segment_size) in [(Some(2000), 512), (None, 128)] {
            let sim = Simulator::new(DesignPoint::rasa_wlbp())
                .unwrap()
                .with_matmul_cap(cap)
                .unwrap()
                .with_segment_size(segment_size)
                .unwrap();
            // Keep the uncapped case tractable: a small GEMM with enough
            // register blocks to trigger the shard-parallel producer.
            let (streamed, materialized) = if cap.is_none() {
                let shape = GemmShape::new(256, 64, 256);
                assert!(sim.generator.block_count(shape).unwrap() > SHARD_WAVE);
                (
                    sim.run_gemm(shape).unwrap(),
                    sim.with_streaming(false).run_gemm(shape).unwrap(),
                )
            } else {
                (
                    sim.run_layer(layer).unwrap(),
                    sim.with_streaming(false).run_layer(layer).unwrap(),
                )
            };
            // Architectural and scheduler statistics are bit-identical;
            // only the pipeline diagnostics differ.
            assert_eq!(streamed.cpu, materialized.cpu);
            assert_eq!(streamed.sched, materialized.sched);
            assert_eq!(streamed.core_cycles, materialized.core_cycles);
            assert!(streamed.pipeline.streamed);
            assert!(!materialized.pipeline.streamed);
            assert_eq!(
                streamed.pipeline.fed_instructions,
                materialized.pipeline.fed_instructions
            );
            assert!(streamed.pipeline.segments > 1);
            assert_eq!(materialized.pipeline.segments, 1);
            // The whole point: the stream never holds the full trace.
            assert!(
                streamed.pipeline.peak_resident_instructions
                    < materialized.pipeline.peak_resident_instructions / 2,
                "streamed {} vs materialized {}",
                streamed.pipeline.peak_resident_instructions,
                materialized.pipeline.peak_resident_instructions
            );
        }
    }

    #[test]
    fn streamed_pipeline_stats_are_deterministic() {
        // Segment boundaries derive from the shape and segment size alone,
        // never from scheduling, so repeated runs agree exactly.
        let sim = Simulator::new(DesignPoint::baseline())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap()
            .with_segment_size(300)
            .unwrap();
        let shape = GemmShape::new(192, 64, 192);
        let a = sim.run_gemm(shape).unwrap();
        let b = sim.run_gemm(shape).unwrap();
        assert_eq!(a, b);
        assert!(a.pipeline.segments > 1);
    }

    #[test]
    fn cap_can_be_removed() {
        let sim = Simulator::new(DesignPoint::rasa_wlbp())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap();
        assert_eq!(sim.matmul_cap(), None);
        let report = sim.run_gemm(GemmShape::new(128, 128, 128)).unwrap();
        assert!(!report.is_extrapolated());
        assert_eq!(report.simulated_matmuls, 8 * 4 * 8);
    }

    #[test]
    fn matmul_cap_has_a_single_source_of_truth() {
        // The cap reported by the simulator is read from the kernel
        // configuration, so a kernel override cannot leave a stale copy.
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert_eq!(sim.matmul_cap(), Some(DEFAULT_MATMUL_CAP));
        let sim = sim
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(123))
            .unwrap();
        assert_eq!(sim.matmul_cap(), Some(123));
        let sim = sim.with_kernel(GemmKernelConfig::amx_like()).unwrap();
        assert_eq!(sim.matmul_cap(), None);
    }

    #[test]
    fn zero_cap_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.with_matmul_cap(Some(0)).is_err());
    }

    #[test]
    fn zero_segment_size_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(matches!(
            sim.with_segment_size(0),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn empty_gemm_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.run_gemm(GemmShape::new(0, 1, 1)).is_err());
    }
}
