use crate::{DesignPoint, SimError, SimReport};
use rasa_cpu::CpuCore;
use rasa_isa::Program;
use rasa_numeric::GemmShape;
use rasa_power::{EngineActivitySummary, PowerReport};
use rasa_systolic::MatrixEngine;
use rasa_trace::{GemmKernelConfig, TraceGenerator};
use rasa_workloads::LayerSpec;

/// Default cap on the number of `rasa_mm` instructions simulated per
/// workload. The Table I layers contain up to hundreds of thousands of
/// register tiles; simulating a few thousand reaches steady state, and the
/// full-workload runtime is extrapolated at the observed throughput (the
/// [`SimReport`] records both numbers).
pub(crate) const DEFAULT_MATMUL_CAP: usize = 4096;

/// End-to-end simulator for one design point.
///
/// A `Simulator` owns the trace generator and the CPU/engine configuration;
/// each `run_*` call generates the workload trace, executes it on a fresh
/// core and returns a [`SimReport`].
#[derive(Debug, Clone)]
pub struct Simulator {
    design: DesignPoint,
    generator: TraceGenerator,
    matmul_cap: Option<usize>,
}

impl Simulator {
    /// Creates a simulator for a design point with the default trace
    /// generator and matmul cap.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid
    /// for the ISA (it never is for the built-in design points).
    pub fn new(design: DesignPoint) -> Result<Self, SimError> {
        let generator = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(DEFAULT_MATMUL_CAP))?;
        Ok(Simulator {
            design,
            generator,
            matmul_cap: Some(DEFAULT_MATMUL_CAP),
        })
    }

    /// Overrides the cap on simulated `rasa_mm` instructions (`None` removes
    /// it and simulates every tile of the workload).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the resulting kernel configuration is
    /// invalid (a cap of zero).
    pub fn with_matmul_cap(mut self, cap: Option<usize>) -> Result<Self, SimError> {
        let mut kernel = *self.generator.kernel();
        kernel.max_matmuls = cap;
        self.generator = self.generator.with_kernel(kernel)?;
        self.matmul_cap = cap;
        Ok(self)
    }

    /// Overrides the full kernel configuration (tiling, scalar overhead,
    /// `rasa_mm` emission order and cap) used to generate traces — the hook
    /// the kernel-blocking ablation uses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid for
    /// the ISA.
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Result<Self, SimError> {
        self.generator = self.generator.with_kernel(kernel)?;
        self.matmul_cap = kernel.max_matmuls;
        Ok(self)
    }

    /// The design point being simulated.
    #[must_use]
    pub const fn design(&self) -> &DesignPoint {
        &self.design
    }

    /// The configured matmul cap, if any.
    #[must_use]
    pub const fn matmul_cap(&self) -> Option<usize> {
        self.matmul_cap
    }

    /// Simulates an arbitrary GEMM.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_gemm(&self, shape: GemmShape) -> Result<SimReport, SimError> {
        let name = format!("GEMM-{}x{}x{}", shape.m, shape.k, shape.n);
        let program = self.generator.gemm(shape, &name)?;
        let total = self.generator.matmul_count(shape)?;
        self.run_program(&program, total as u64, &name)
    }

    /// Simulates one DNN layer (convolutions are lowered via im2col).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        let shape = layer.gemm_shape();
        let program = self.generator.gemm(shape, layer.name())?;
        let total = self.generator.matmul_count(shape)?;
        self.run_program(&program, total as u64, layer.name())
    }

    /// Simulates one DNN layer on the cycle-stepping **reference** core
    /// ([`CpuCore::run_reference`]) instead of the event-driven scheduler.
    ///
    /// The architectural statistics (`report.cpu`) must be bit-identical to
    /// [`Simulator::run_layer`]; the scheduler counters (`report.sched`)
    /// are zero because the reference loop does not use the event heap.
    /// This exists for parity checks and the `run_all` timing comparison.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer_reference(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        let shape = layer.gemm_shape();
        let program = self.generator.gemm(shape, layer.name())?;
        let total = self.generator.matmul_count(shape)?;
        self.run_program_on(&program, total as u64, layer.name(), true)
    }

    /// Runs an already-generated program, extrapolating to `total_matmuls`
    /// when the program is a truncated trace of a larger workload.
    ///
    /// # Errors
    ///
    /// Propagates CPU-model errors.
    pub fn run_program(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
    ) -> Result<SimReport, SimError> {
        self.run_program_on(program, total_matmuls, workload, false)
    }

    fn run_program_on(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
        reference: bool,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let mut core = CpuCore::new(*self.design.cpu(), engine);
        let cpu_stats = if reference {
            core.run_reference(program)?
        } else {
            core.run(program)?
        };
        let sched = *core.sched_stats();

        let simulated_matmuls = cpu_stats.retired_matmuls;
        let simulated_cycles = cpu_stats.cycles;
        let core_cycles = if simulated_matmuls > 0 && total_matmuls > simulated_matmuls {
            // Extrapolate at the observed steady-state throughput.
            let per_mm = simulated_cycles as f64 / simulated_matmuls as f64;
            (per_mm * total_matmuls as f64).round() as u64
        } else {
            simulated_cycles
        };

        let activity = EngineActivitySummary::from_engine_stats(&cpu_stats.engine);
        let power = PowerReport::new(self.design.systolic(), &activity, simulated_cycles);

        Ok(SimReport {
            design: self.design.name().to_string(),
            workload: workload.to_string(),
            core_cycles,
            simulated_core_cycles: simulated_cycles,
            simulated_matmuls,
            total_matmuls: total_matmuls.max(simulated_matmuls),
            runtime_seconds: self.design.cpu().cycles_to_seconds(core_cycles),
            cpu: cpu_stats,
            sched,
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_workloads::WorkloadSuite;

    #[test]
    fn small_gemm_runs_exactly() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        let report = sim.run_gemm(GemmShape::new(64, 64, 64)).unwrap();
        assert_eq!(report.total_matmuls, 32);
        assert_eq!(report.simulated_matmuls, 32);
        assert!(!report.is_extrapolated());
        // 32 serialized matmuls at 380 core cycles each dominate the run.
        assert!(report.core_cycles > 32 * 380);
        assert!(report.runtime_seconds > 0.0);
    }

    #[test]
    fn large_layer_is_extrapolated() {
        let sim = Simulator::new(DesignPoint::rasa_dmdb_wls())
            .unwrap()
            .with_matmul_cap(Some(512))
            .unwrap();
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap();
        let report = sim.run_layer(layer).unwrap();
        assert!(report.is_extrapolated());
        assert_eq!(
            report.total_matmuls,
            (512 / 16 * 1024 / 32 * 1024 / 16) as u64
        );
        assert!(report.core_cycles > report.simulated_core_cycles);
        assert_eq!(report.workload, "DLRM-1");
    }

    #[test]
    fn designs_preserve_the_expected_ordering_on_a_layer() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("BERT-1").unwrap();
        let mut cycles = Vec::new();
        for design in [
            DesignPoint::baseline(),
            DesignPoint::rasa_pipe(),
            DesignPoint::rasa_wlbp(),
            DesignPoint::rasa_dm_wlbp(),
            DesignPoint::rasa_db_wls(),
            DesignPoint::rasa_dmdb_wls(),
        ] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(768))
                .unwrap();
            cycles.push(sim.run_layer(layer).unwrap().core_cycles);
        }
        for pair in cycles.windows(2) {
            assert!(pair[0] >= pair[1], "expected improvement: {cycles:?}");
        }
        // End-to-end speedup of the best design is large.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn reference_core_matches_event_driven_core() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap();
        for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(256))
                .unwrap();
            let event = sim.run_layer(layer).unwrap();
            let reference = sim.run_layer_reference(layer).unwrap();
            assert_eq!(event.cpu, reference.cpu, "architectural stats diverge");
            assert_eq!(event.core_cycles, reference.core_cycles);
            // The event-driven core reports scheduler activity, the
            // reference loop reports none.
            assert!(event.sched.completion_events > 0);
            assert!(event.sched.skip_rate() > 0.0);
            assert_eq!(reference.sched, rasa_cpu::SchedStats::default());
            // The flat summary surfaces the event counts.
            let summary = event.summary();
            assert_eq!(summary.sched_events, event.sched.completion_events);
            assert_eq!(summary.visited_cycles, event.sched.visited_cycles);
        }
    }

    #[test]
    fn cap_can_be_removed() {
        let sim = Simulator::new(DesignPoint::rasa_wlbp())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap();
        assert_eq!(sim.matmul_cap(), None);
        let report = sim.run_gemm(GemmShape::new(128, 128, 128)).unwrap();
        assert!(!report.is_extrapolated());
        assert_eq!(report.simulated_matmuls, 8 * 4 * 8);
    }

    #[test]
    fn zero_cap_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.with_matmul_cap(Some(0)).is_err());
    }

    #[test]
    fn empty_gemm_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.run_gemm(GemmShape::new(0, 1, 1)).is_err());
    }
}
