use crate::prof::{self, Stage};
use crate::{DesignPoint, PipelineStats, SimError, SimReport};
use rasa_cpu::{CpuCore, CpuStats, SchedStats, SpecDelta, SpeculativeRun, StreamStats};
use rasa_isa::{Program, ProgramSegment};
use rasa_numeric::{GemmShape, TileGrid};
use rasa_power::{EngineActivitySummary, PowerReport};
use rasa_systolic::MatrixEngine;
use rasa_trace::{
    GemmKernelConfig, ProgramSource, TraceError, TraceGenerator, DEFAULT_SEGMENT_SIZE,
};
use rasa_workloads::LayerSpec;
use rayon::prelude::*;
use std::ops::Range;
use std::sync::mpsc;

/// Default cap on the number of `rasa_mm` instructions simulated per
/// workload. The Table I layers contain up to hundreds of thousands of
/// register tiles; simulating a few thousand reaches steady state, and the
/// full-workload runtime is extrapolated at the observed throughput (the
/// [`SimReport`] records both numbers).
pub(crate) const DEFAULT_MATMUL_CAP: usize = 4096;

/// Segments buffered in the bounded producer→consumer channel of a
/// streamed run. Together with the shard wave this bounds the resident
/// trace to a handful of segments, whatever the workload size.
const STREAM_CHANNEL_SEGMENTS: usize = 4;

/// Register-block shards generated concurrently per wave when an uncapped
/// trace is fanned out over the worker pool. Small on purpose: a streamed
/// cell may itself be one job of an already-parallel experiment matrix.
const SHARD_WAVE: usize = 4;

/// Default speculative workers per fork/join wave (worker 0 is the
/// authoritative continuation; the rest are predicted). The value is part
/// of the deterministic schedule — pipeline statistics must not depend on
/// the machine's core count — so it is a constant, not a CPU probe.
pub const DEFAULT_SPEC_DEPTH: usize = 6;

/// Strides the speculative scheduler probes for a confirmed periodic state
/// delta before giving up and running the cell sequentially.
const SPEC_PROBE_STRIDES: usize = 8;

/// The deterministic fork/join schedule of a speculative run: how many
/// register blocks one speculative segment spans and where the uniform
/// (periodic) region of the block walk ends.
#[derive(Debug, Clone, Copy)]
struct SpecPlan {
    /// Register blocks per speculative segment — a multiple of the block
    /// walk's structural period, so every segment carries identical work.
    stride_blocks: usize,
    /// Blocks `>= uniform_end` (a ragged final block column) never
    /// speculate; they are fed sequentially after the last wave.
    uniform_end: usize,
}

/// End-to-end simulator for one design point.
///
/// A `Simulator` owns the trace generator and the CPU/engine configuration;
/// each `run_*` call generates the workload trace, executes it on a fresh
/// core and returns a [`SimReport`].
///
/// By default the trace→simulate path is a **streaming pipeline**: a
/// producer thread generates bounded instruction segments (in parallel
/// register-block shards when the trace is uncapped) into a bounded
/// channel while the resumable core consumes them, so trace generation
/// overlaps timing simulation and the resident trace stays O(segment)
/// instead of O(workload). The simulated statistics are bit-identical to
/// the materialized path ([`Simulator::with_streaming`]`(false)`), which is
/// retained for A/B comparisons; [`SimReport::pipeline`] records which path
/// ran and what it kept resident.
#[derive(Debug, Clone)]
pub struct Simulator {
    design: DesignPoint,
    generator: TraceGenerator,
    streaming: bool,
    segment_size: usize,
    speculation: bool,
    spec_depth: usize,
}

impl Simulator {
    /// Creates a simulator for a design point with the default trace
    /// generator, matmul cap and streaming pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid
    /// for the ISA (it never is for the built-in design points).
    pub fn new(design: DesignPoint) -> Result<Self, SimError> {
        // The scheme-derived default kernel (capped): every layer that needs
        // "the" kernel goes through `GemmKernelConfig::default()`.
        let generator = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::default().with_max_matmuls(DEFAULT_MATMUL_CAP))?;
        Ok(Simulator {
            design,
            generator,
            streaming: true,
            segment_size: DEFAULT_SEGMENT_SIZE,
            speculation: true,
            spec_depth: DEFAULT_SPEC_DEPTH,
        })
    }

    /// Overrides the cap on simulated `rasa_mm` instructions (`None` removes
    /// it and simulates every tile of the workload).
    ///
    /// The cap lives in the kernel configuration — the single source of
    /// truth the trace generator, the cache keys and
    /// [`Simulator::matmul_cap`] all read.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the resulting kernel configuration is
    /// invalid (a cap of zero).
    pub fn with_matmul_cap(mut self, cap: Option<usize>) -> Result<Self, SimError> {
        let mut kernel = *self.generator.kernel();
        kernel.max_matmuls = cap;
        self.generator = self.generator.with_kernel(kernel)?;
        Ok(self)
    }

    /// Overrides the full kernel configuration (tiling, scalar overhead,
    /// `rasa_mm` emission order and cap) used to generate traces — the hook
    /// the kernel-blocking ablation uses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the kernel configuration is invalid for
    /// the ISA.
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Result<Self, SimError> {
        self.generator = self.generator.with_kernel(kernel)?;
        Ok(self)
    }

    /// Selects the streaming pipeline (default) or the materialized
    /// generate-then-simulate path. Both produce bit-identical simulated
    /// statistics; the materialized path is the A/B reference for the
    /// streaming pipeline's memory and overlap gains.
    #[must_use]
    pub const fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Overrides the target streamed-segment size in instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for a zero segment size.
    pub fn with_segment_size(mut self, segment_size: usize) -> Result<Self, SimError> {
        if segment_size == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "segment size must be at least one instruction".to_string(),
            });
        }
        self.segment_size = segment_size;
        Ok(self)
    }

    /// Enables (default) or disables the speculative fork/join segment
    /// scheduler for streamed, uncapped runs. Speculation is a wall-clock
    /// optimization only: the simulated statistics are bit-identical either
    /// way (mispredicted segments replay sequentially), which the parity
    /// tests and CI enforce.
    #[must_use]
    pub const fn with_speculation(mut self, speculation: bool) -> Self {
        self.speculation = speculation;
        self
    }

    /// Overrides the number of speculative workers per fork/join wave.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for a zero depth.
    pub fn with_spec_depth(mut self, spec_depth: usize) -> Result<Self, SimError> {
        if spec_depth == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "speculation depth must be at least one worker".to_string(),
            });
        }
        self.spec_depth = spec_depth;
        Ok(self)
    }

    /// Whether runs may use the speculative fork/join segment scheduler.
    #[must_use]
    pub const fn is_speculative(&self) -> bool {
        self.speculation
    }

    /// Speculative workers per fork/join wave.
    #[must_use]
    pub const fn spec_depth(&self) -> usize {
        self.spec_depth
    }

    /// The design point being simulated.
    #[must_use]
    pub const fn design(&self) -> &DesignPoint {
        &self.design
    }

    /// The configured matmul cap, if any — read from the kernel
    /// configuration, its single source of truth.
    #[must_use]
    pub fn matmul_cap(&self) -> Option<usize> {
        self.generator.kernel().max_matmuls
    }

    /// Whether runs use the streaming pipeline.
    #[must_use]
    pub const fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// The target streamed-segment size in instructions.
    #[must_use]
    pub const fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Simulates an arbitrary GEMM.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_gemm(&self, shape: GemmShape) -> Result<SimReport, SimError> {
        let name = format!("GEMM-{}x{}x{}", shape.m, shape.k, shape.n);
        self.run_shape(shape, &name)
    }

    /// Simulates one DNN layer (convolutions are lowered via im2col).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        self.run_shape(layer.gemm_shape(), layer.name())
    }

    /// Simulates one DNN layer on the cycle-stepping **reference** core
    /// ([`CpuCore::run_reference`]) instead of the event-driven scheduler.
    ///
    /// The architectural statistics (`report.cpu`) must be bit-identical to
    /// [`Simulator::run_layer`]; the scheduler counters (`report.sched`)
    /// are zero because the reference loop does not use the event heap.
    /// This exists for parity checks and the `run_all` timing comparison.
    /// The reference core always consumes a materialized program.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation and CPU errors.
    pub fn run_layer_reference(&self, layer: &LayerSpec) -> Result<SimReport, SimError> {
        let shape = layer.gemm_shape();
        let gen = prof::time(Stage::TraceGen);
        let program = self.generator.gemm(shape, layer.name())?;
        drop(gen);
        let total = self.generator.matmul_count(shape)?;
        self.run_program_on(&program, total as u64, layer.name(), true)
    }

    /// Generates and simulates `shape` under this simulator's configured
    /// pipeline (streamed or materialized).
    fn run_shape(&self, shape: GemmShape, name: &str) -> Result<SimReport, SimError> {
        let total = self.generator.matmul_count(shape)? as u64;
        if self.streaming {
            if let Some(plan) = self.spec_plan(shape)? {
                return self.run_speculative(shape, name, total, plan);
            }
            self.run_streamed(shape, name, total)
        } else {
            let gen = prof::time(Stage::TraceGen);
            let program = self.generator.gemm(shape, name)?;
            drop(gen);
            self.run_program_on(&program, total, name, false)
        }
    }

    /// Runs an already-generated program, extrapolating to `total_matmuls`
    /// when the program is a truncated trace of a larger workload.
    ///
    /// # Errors
    ///
    /// Propagates CPU-model errors.
    pub fn run_program(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
    ) -> Result<SimReport, SimError> {
        self.run_program_on(program, total_matmuls, workload, false)
    }

    fn run_program_on(
        &self,
        program: &Program,
        total_matmuls: u64,
        workload: &str,
        reference: bool,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let mut core = CpuCore::new(*self.design.cpu(), engine);
        let cpu_stats = if reference {
            core.run_reference(program)?
        } else {
            core.run(program)?
        };
        let sched = *core.sched_stats();
        // Both materialized paths hold (and feed) the whole program at
        // once: one segment, everything resident.
        let pipeline = PipelineStats {
            streamed: false,
            segments: 1,
            fed_instructions: program.len() as u64,
            peak_resident_instructions: program.len() as u64,
            ..PipelineStats::default()
        };
        Ok(self.report(cpu_stats, sched, pipeline, total_matmuls, workload))
    }

    /// The streaming trace→simulate pipeline: a producer thread generates
    /// bounded segments into a bounded channel while the resumable core
    /// consumes them. Uncapped traces are additionally fanned out as
    /// register-block shards generated in parallel waves through the rayon
    /// pool, so a single heavy `--full` workload no longer serializes its
    /// whole trace generation behind one thread.
    fn run_streamed(
        &self,
        shape: GemmShape,
        name: &str,
        total_matmuls: u64,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let mut core = CpuCore::new(*self.design.cpu(), engine);
        let generator = &self.generator;
        let segment_size = self.effective_segment_size();
        let blocks = generator.block_count(shape)?;
        // Shards only pay off when the trace is uncapped (the cap is a
        // sequential prefix property) and wide enough to split.
        let shard_blocks = if generator.kernel().max_matmuls.is_none() && blocks > SHARD_WAVE {
            Some(self.blocks_per_shard(shape, segment_size)?)
        } else {
            None
        };

        let (cpu_stats, sched, stream) = std::thread::scope(
            |scope| -> Result<(CpuStats, SchedStats, StreamStats), SimError> {
                let (tx, rx) = mpsc::sync_channel::<Result<ProgramSegment, TraceError>>(
                    STREAM_CHANNEL_SEGMENTS,
                );
                scope.spawn(move || {
                    let outcome = produce_segments(
                        generator,
                        shape,
                        name,
                        blocks,
                        shard_blocks,
                        segment_size,
                        &tx,
                    );
                    if let Err(error) = outcome {
                        // The consumer surfaces the error; if it already
                        // hung up, there is nobody left to care.
                        let _ = tx.send(Err(error));
                    }
                });
                let mut run = core.begin_run(generator.isa())?;
                for message in rx {
                    let segment = message?;
                    core.feed_segment(&mut run, &segment)?;
                }
                let cpu_stats = core.run_to_quiescence(run)?;
                Ok((cpu_stats, *core.sched_stats(), *core.stream_stats()))
            },
        )?;

        let pipeline = PipelineStats {
            streamed: true,
            segments: stream.segments,
            fed_instructions: stream.fed_instructions,
            peak_resident_instructions: stream.peak_resident as u64,
            ..PipelineStats::default()
        };
        Ok(self.report(cpu_stats, sched, pipeline, total_matmuls, name))
    }

    /// The deterministic fork/join schedule for speculating `shape`, or
    /// `None` when the cell must run sequentially: speculation is off, the
    /// trace is capped (the cap is a sequential prefix property), or the
    /// uniform block region is too short to amortize a probe and a wave.
    fn spec_plan(&self, shape: GemmShape) -> Result<Option<SpecPlan>, SimError> {
        if !self.speculation || self.generator.kernel().max_matmuls.is_some() {
            return Ok(None);
        }
        let kernel = self.generator.kernel();
        let grid = TileGrid::new(shape, kernel.tiling)?;
        let (mt, kt, nt) = (grid.m_tiles(), grid.k_tiles(), grid.n_tiles());
        let blocks = self.generator.block_count(shape)?;
        let block = kernel.scheme.block;
        let mb_count = block.m_blocks(mt);
        // The block walk is n-major: a column of `mb_count` row blocks per
        // block-width tile-column. An `mt` that does not divide by the
        // block height makes the last block of every column ragged — the
        // walk is still periodic, with period one column instead of one
        // block. An `nt` that does not divide by the block width makes the
        // entire last column ragged; it is excluded from speculation
        // outright.
        let base_period = if mt % block.m != 0 { mb_count } else { 1 };
        let uniform_end = if nt % block.n != 0 {
            blocks - mb_count
        } else {
            blocks
        };
        // One stride spans a couple of segments' worth of blocks (the same
        // scale as the shard-parallel producer), rounded up to a whole
        // number of structural periods.
        let block_len = kernel.block_len_estimate(kt);
        let target = (2 * self.effective_segment_size())
            .div_ceil(block_len)
            .max(1);
        let stride_blocks = target.div_ceil(base_period) * base_period;
        // Worth it only when the uniform region holds the warm-up stride,
        // a couple of probe strides and at least one full wave.
        if uniform_end < stride_blocks * (3 + self.spec_depth) {
            return Ok(None);
        }
        Ok(Some(SpecPlan {
            stride_blocks,
            uniform_end,
        }))
    }

    /// Generates blocks `[lo, hi)` of `shape` and feeds them into the
    /// authoritative speculative run.
    fn feed_blocks(
        &self,
        spec: &mut SpeculativeRun,
        shape: GemmShape,
        name: &str,
        lo: usize,
        hi: usize,
    ) -> Result<(), SimError> {
        let mut shard = self
            .generator
            .gemm_blocks(shape, name, lo..hi, self.segment_size)?;
        while let Some(segment) = shard.next_segment()? {
            spec.feed_segment(&segment)?;
        }
        Ok(())
    }

    /// The speculative fork/join pipeline for streamed, uncapped cells.
    ///
    /// Protocol (mechanism in `rasa_cpu::SpeculativeRun`): warm up one
    /// stride, slide a probe until one block-stride boundary is an exact
    /// translation of its predecessor (a *confirmed* periodic
    /// [`SpecDelta`]), then repeatedly fork `spec_depth` workers seeded
    /// with predicted states `j · delta` ahead, simulate their strides in
    /// parallel on the rayon pool (each worker generating its own trace
    /// shard), and join in order — committing validated workers, replaying
    /// mispredicted ones sequentially. The ragged tail past the uniform
    /// region feeds sequentially.
    ///
    /// The schedule (stride, depth, wave boundaries) derives only from the
    /// shape, segment size and configured depth — never from thread timing
    /// — so the statistics, including the speculation counters, are
    /// deterministic and machine-independent; and the architectural
    /// statistics are bit-identical to the sequential streamed path by the
    /// commit-validation argument.
    fn run_speculative(
        &self,
        shape: GemmShape,
        name: &str,
        total_matmuls: u64,
        plan: SpecPlan,
    ) -> Result<SimReport, SimError> {
        let engine = MatrixEngine::new(*self.design.systolic());
        let core = CpuCore::new(*self.design.cpu(), engine);
        let blocks = self.generator.block_count(shape)?;
        let stride = plan.stride_blocks;
        let mut spec = SpeculativeRun::begin(core, self.generator.isa())?;

        // Warm-up: one stride to move the pipeline off the cold-start
        // transient before probing.
        self.feed_blocks(&mut spec, shape, name, 0, stride)?;
        let mut next = stride;

        // Probe: slide stride by stride until a boundary is an exact
        // translation of its predecessor. The structural check is what
        // buys the deterministic commit rate — see
        // `SpecCheckpoint::shifted_matches`.
        let mut seed = spec.checkpoint();
        let mut delta: Option<SpecDelta> = None;
        for _ in 0..SPEC_PROBE_STRIDES {
            if next + stride > plan.uniform_end {
                break;
            }
            self.feed_blocks(&mut spec, shape, name, next, next + stride)?;
            next += stride;
            let cp = spec.checkpoint();
            if let Some(candidate) = SpecDelta::between(&seed, &cp) {
                if seed.shifted_matches(&candidate, &cp) {
                    delta = Some(candidate);
                    seed = cp;
                    break;
                }
            }
            seed = cp;
        }

        // Fork/join waves across the uniform region.
        if let Some(delta) = delta {
            let depth = self.spec_depth;
            while next + depth * stride <= plan.uniform_end {
                let mut workers: Vec<(usize, rasa_cpu::SpeculativeWorker)> = (0..depth)
                    .map(|j| (next + j * stride, spec.fork(&seed, &delta, j as u64)))
                    .collect();
                workers
                    .par_iter_mut()
                    .try_for_each(|(lo, worker)| -> Result<(), SimError> {
                        let mut shard = self.generator.gemm_blocks(
                            shape,
                            name,
                            *lo..*lo + stride,
                            self.segment_size,
                        )?;
                        while let Some(segment) = shard.next_segment()? {
                            worker.feed_segment(&segment)?;
                        }
                        Ok(())
                    })?;
                for (lo, worker) in workers {
                    if !spec.try_commit(worker) {
                        self.feed_blocks(&mut spec, shape, name, lo, lo + stride)?;
                    }
                }
                next += depth * stride;
                seed = spec.checkpoint();
            }
        }

        // Sequential tail: the uniform remainder plus any ragged column.
        if next < blocks {
            self.feed_blocks(&mut spec, shape, name, next, blocks)?;
        }
        let (cpu_stats, sched, stream) = spec.finish()?;
        let pipeline = PipelineStats {
            streamed: true,
            segments: stream.segments,
            fed_instructions: stream.fed_instructions,
            peak_resident_instructions: stream.peak_resident as u64,
            spec_forks: stream.spec_forks,
            spec_commits: stream.spec_commits,
            spec_replays: stream.spec_replays,
        };
        Ok(self.report(cpu_stats, sched, pipeline, total_matmuls, name))
    }

    /// Register blocks per generation shard: sized so one shard amounts to
    /// a couple of segments, derived deterministically from the shape (so
    /// segment boundaries — and hence pipeline statistics — do not depend
    /// on the machine's parallelism).
    fn blocks_per_shard(&self, shape: GemmShape, segment_size: usize) -> Result<usize, SimError> {
        let kt = rasa_numeric::TileGrid::new(shape, self.generator.kernel().tiling)?.k_tiles();
        // The scheme's own estimate of one full register block — the single
        // source of truth shared with the speculative fork points.
        let block_len = self.generator.kernel().block_len_estimate(kt);
        Ok((2 * segment_size).div_ceil(block_len).max(1))
    }

    /// The segment size streams actually use: a kernel scheme carrying a
    /// segment-size hint overrides the simulator's configured size, so the
    /// shard and speculation schedules must be derived from the same value.
    fn effective_segment_size(&self) -> usize {
        self.generator
            .kernel()
            .scheme
            .segment_size
            .unwrap_or(self.segment_size)
    }

    fn report(
        &self,
        cpu_stats: CpuStats,
        sched: SchedStats,
        pipeline: PipelineStats,
        total_matmuls: u64,
        workload: &str,
    ) -> SimReport {
        let simulated_matmuls = cpu_stats.retired_matmuls;
        let simulated_cycles = cpu_stats.cycles;
        let core_cycles = if simulated_matmuls > 0 && total_matmuls > simulated_matmuls {
            // Extrapolate at the observed steady-state throughput.
            let per_mm = simulated_cycles as f64 / simulated_matmuls as f64;
            (per_mm * total_matmuls as f64).round() as u64
        } else {
            simulated_cycles
        };

        let activity = EngineActivitySummary::from_engine_stats(&cpu_stats.engine);
        let power = PowerReport::new(self.design.systolic(), &activity, simulated_cycles);

        SimReport {
            design: self.design.name().to_string(),
            workload: workload.to_string(),
            core_cycles,
            simulated_core_cycles: simulated_cycles,
            simulated_matmuls,
            total_matmuls: total_matmuls.max(simulated_matmuls),
            runtime_seconds: self.design.cpu().cycles_to_seconds(core_cycles),
            cpu: cpu_stats,
            sched,
            pipeline,
            power,
        }
    }
}

/// Producer half of the streaming pipeline: pushes the trace of `shape`
/// into `tx` as validated segments, either sequentially or as
/// wave-parallel register-block shards. A send failure means the consumer
/// hung up (success or error); either way there is nothing left to do.
fn produce_segments(
    generator: &TraceGenerator,
    shape: GemmShape,
    name: &str,
    blocks: usize,
    shard_blocks: Option<usize>,
    segment_size: usize,
    tx: &mpsc::SyncSender<Result<ProgramSegment, TraceError>>,
) -> Result<(), TraceError> {
    let Some(shard_blocks) = shard_blocks else {
        let mut stream = generator.gemm_stream(shape, name, segment_size)?;
        loop {
            let gen = prof::time(Stage::TraceGen);
            let segment = stream.next_segment()?;
            drop(gen);
            let Some(segment) = segment else {
                return Ok(());
            };
            if tx.send(Ok(segment)).is_err() {
                return Ok(());
            }
        }
    };

    // Wave-parallel sharding: generate SHARD_WAVE shards concurrently,
    // then forward their segments in block order while the core simulates.
    // Memory stays bounded by (wave + channel) segments.
    let mut start = 0usize;
    while start < blocks {
        let ranges: Vec<Range<usize>> = (0..SHARD_WAVE)
            .map(|i| {
                let lo = (start + i * shard_blocks).min(blocks);
                let hi = (start + (i + 1) * shard_blocks).min(blocks);
                lo..hi
            })
            .filter(|r| !r.is_empty())
            .collect();
        start = (start + SHARD_WAVE * shard_blocks).min(blocks);
        let gen = prof::time(Stage::TraceGen);
        let wave: Result<Vec<Vec<ProgramSegment>>, TraceError> = ranges
            .par_iter()
            .map(|range| {
                generator
                    .gemm_blocks(shape, name, range.clone(), segment_size)?
                    .collect()
            })
            .collect();
        drop(gen);
        for shard in wave? {
            for segment in shard {
                if tx.send(Ok(segment)).is_err() {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_workloads::WorkloadSuite;

    #[test]
    fn small_gemm_runs_exactly() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        let report = sim.run_gemm(GemmShape::new(64, 64, 64)).unwrap();
        assert_eq!(report.total_matmuls, 32);
        assert_eq!(report.simulated_matmuls, 32);
        assert!(!report.is_extrapolated());
        // 32 serialized matmuls at 380 core cycles each dominate the run.
        assert!(report.core_cycles > 32 * 380);
        assert!(report.runtime_seconds > 0.0);
    }

    #[test]
    fn large_layer_is_extrapolated() {
        let sim = Simulator::new(DesignPoint::rasa_dmdb_wls())
            .unwrap()
            .with_matmul_cap(Some(512))
            .unwrap();
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap();
        let report = sim.run_layer(layer).unwrap();
        assert!(report.is_extrapolated());
        assert_eq!(
            report.total_matmuls,
            (512 / 16 * 1024 / 32 * 1024 / 16) as u64
        );
        assert!(report.core_cycles > report.simulated_core_cycles);
        assert_eq!(report.workload, "DLRM-1");
    }

    #[test]
    fn designs_preserve_the_expected_ordering_on_a_layer() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("BERT-1").unwrap();
        let mut cycles = Vec::new();
        for design in [
            DesignPoint::baseline(),
            DesignPoint::rasa_pipe(),
            DesignPoint::rasa_wlbp(),
            DesignPoint::rasa_dm_wlbp(),
            DesignPoint::rasa_db_wls(),
            DesignPoint::rasa_dmdb_wls(),
        ] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(768))
                .unwrap();
            cycles.push(sim.run_layer(layer).unwrap().core_cycles);
        }
        for pair in cycles.windows(2) {
            assert!(pair[0] >= pair[1], "expected improvement: {cycles:?}");
        }
        // End-to-end speedup of the best design is large.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn reference_core_matches_event_driven_core() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap();
        for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(Some(256))
                .unwrap();
            let event = sim.run_layer(layer).unwrap();
            let reference = sim.run_layer_reference(layer).unwrap();
            assert_eq!(event.cpu, reference.cpu, "architectural stats diverge");
            assert_eq!(event.core_cycles, reference.core_cycles);
            // The event-driven core reports scheduler activity, the
            // reference loop reports none.
            assert!(event.sched.completion_events > 0);
            assert!(event.sched.skip_rate() > 0.0);
            assert_eq!(reference.sched, rasa_cpu::SchedStats::default());
            // The flat summary surfaces the event counts.
            let summary = event.summary();
            assert_eq!(summary.sched_events, event.sched.completion_events);
            assert_eq!(summary.visited_cycles, event.sched.visited_cycles);
        }
    }

    #[test]
    fn streamed_and_materialized_paths_are_bit_identical() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap();
        for (cap, segment_size) in [(Some(2000), 512), (None, 128)] {
            let sim = Simulator::new(DesignPoint::rasa_wlbp())
                .unwrap()
                .with_matmul_cap(cap)
                .unwrap()
                .with_segment_size(segment_size)
                .unwrap();
            // Keep the uncapped case tractable: a small GEMM with enough
            // register blocks to trigger the shard-parallel producer.
            let (streamed, materialized) = if cap.is_none() {
                let shape = GemmShape::new(256, 64, 256);
                assert!(sim.generator.block_count(shape).unwrap() > SHARD_WAVE);
                (
                    sim.run_gemm(shape).unwrap(),
                    sim.with_streaming(false).run_gemm(shape).unwrap(),
                )
            } else {
                (
                    sim.run_layer(layer).unwrap(),
                    sim.with_streaming(false).run_layer(layer).unwrap(),
                )
            };
            // Architectural and scheduler statistics are bit-identical;
            // only the pipeline diagnostics differ.
            assert_eq!(streamed.cpu, materialized.cpu);
            assert_eq!(streamed.sched, materialized.sched);
            assert_eq!(streamed.core_cycles, materialized.core_cycles);
            assert!(streamed.pipeline.streamed);
            assert!(!materialized.pipeline.streamed);
            assert_eq!(
                streamed.pipeline.fed_instructions,
                materialized.pipeline.fed_instructions
            );
            assert!(streamed.pipeline.segments > 1);
            assert_eq!(materialized.pipeline.segments, 1);
            // The whole point: the stream never holds the full trace.
            assert!(
                streamed.pipeline.peak_resident_instructions
                    < materialized.pipeline.peak_resident_instructions / 2,
                "streamed {} vs materialized {}",
                streamed.pipeline.peak_resident_instructions,
                materialized.pipeline.peak_resident_instructions
            );
        }
    }

    #[test]
    fn speculative_path_is_bit_identical_and_commits() {
        // The tentpole invariant: the speculative fork/join scheduler
        // produces architectural and scheduler statistics bit-identical to
        // the sequential streamed path and the materialized path, while
        // actually committing speculative segments.
        let shape = GemmShape::new(256, 64, 512);
        for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
            let sim = Simulator::new(design)
                .unwrap()
                .with_matmul_cap(None)
                .unwrap()
                .with_segment_size(128)
                .unwrap();
            let speculative = sim.run_gemm(shape).unwrap();
            let sequential = sim.clone().with_speculation(false).run_gemm(shape).unwrap();
            let materialized = sim.with_streaming(false).run_gemm(shape).unwrap();
            assert_eq!(speculative.cpu, sequential.cpu);
            assert_eq!(speculative.sched, sequential.sched);
            assert_eq!(speculative.cpu, materialized.cpu);
            assert_eq!(speculative.core_cycles, sequential.core_cycles);
            assert_eq!(
                speculative.pipeline.fed_instructions,
                sequential.pipeline.fed_instructions
            );
            // The scheduler engaged and the confirmed-delta probe makes
            // every predicted worker commit on this uniform trace.
            assert!(speculative.pipeline.spec_forks > 0);
            assert_eq!(
                speculative.pipeline.spec_commits,
                speculative.pipeline.spec_forks
            );
            assert_eq!(speculative.pipeline.spec_replays, 0);
            assert_eq!(sequential.pipeline.spec_forks, 0);
        }
    }

    #[test]
    fn four_paths_are_bit_identical_on_a_non_default_kernel_scheme() {
        // Satellite of the kernel-scheme refactor: the speculative,
        // sequential-streamed, materialized and cycle-stepping reference
        // paths must agree bit for bit even when the kernel is nothing like
        // Algorithm 1 — a 1×3 block, interleaved matmuls, accumulators
        // spilled around every K step and a lean scalar model.
        use rasa_trace::{KernelSchemeBuilder, LoopOrder};
        let kernel = KernelSchemeBuilder::new()
            .with_block(1, 3)
            .with_matmul_order(rasa_trace::MatmulOrder::Interleaved)
            .with_loop_order(LoopOrder::NInnermost)
            .with_scalar_ops_per_step(1)
            .build()
            .unwrap();
        let layer = rasa_workloads::LayerSpec::fc("scheme-parity", 256, 64, 512);
        let sim = Simulator::new(DesignPoint::rasa_dmdb_wls())
            .unwrap()
            .with_kernel(kernel)
            .unwrap()
            .with_segment_size(128)
            .unwrap();
        let speculative = sim.run_layer(&layer).unwrap();
        let sequential = sim
            .clone()
            .with_speculation(false)
            .run_layer(&layer)
            .unwrap();
        let materialized = sim.clone().with_streaming(false).run_layer(&layer).unwrap();
        let reference = sim.run_layer_reference(&layer).unwrap();
        assert_eq!(speculative.cpu, sequential.cpu);
        assert_eq!(speculative.cpu, materialized.cpu);
        assert_eq!(speculative.cpu, reference.cpu);
        assert_eq!(speculative.core_cycles, reference.core_cycles);
        assert_eq!(speculative.sched, sequential.sched);
        // The non-default scheme still speculates (the plan generalizes
        // beyond the 2×2 walk) and commits on this uniform trace.
        assert!(speculative.pipeline.spec_forks > 0);
        assert_eq!(
            speculative.pipeline.spec_commits,
            speculative.pipeline.spec_forks
        );
    }

    #[test]
    fn speculative_runs_are_deterministic() {
        // The fork/join schedule derives from the shape, segment size and
        // depth alone — never from thread timing — so the speculation
        // counters themselves are reproducible.
        let sim = Simulator::new(DesignPoint::rasa_wlbp())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap()
            .with_segment_size(128)
            .unwrap()
            .with_spec_depth(3)
            .unwrap();
        let shape = GemmShape::new(256, 64, 256);
        let a = sim.run_gemm(shape).unwrap();
        let b = sim.run_gemm(shape).unwrap();
        assert_eq!(a, b);
        assert!(a.pipeline.spec_forks > 0);
    }

    #[test]
    fn capped_runs_never_speculate() {
        // A matmul cap is a sequential-prefix property, so the planner
        // must refuse to fork no matter how large the trace is.
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.is_speculative());
        let plan = sim.spec_plan(GemmShape::new(1024, 1024, 1024)).unwrap();
        assert!(plan.is_none());
    }

    #[test]
    fn short_traces_fall_back_to_sequential_streaming() {
        let sim = Simulator::new(DesignPoint::baseline())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap();
        let report = sim.run_gemm(GemmShape::new(64, 64, 64)).unwrap();
        assert_eq!(report.pipeline.spec_forks, 0);
    }

    #[test]
    fn zero_spec_depth_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(matches!(
            sim.with_spec_depth(0),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn streamed_pipeline_stats_are_deterministic() {
        // Segment boundaries derive from the shape and segment size alone,
        // never from scheduling, so repeated runs agree exactly.
        let sim = Simulator::new(DesignPoint::baseline())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap()
            .with_segment_size(300)
            .unwrap();
        let shape = GemmShape::new(192, 64, 192);
        let a = sim.run_gemm(shape).unwrap();
        let b = sim.run_gemm(shape).unwrap();
        assert_eq!(a, b);
        assert!(a.pipeline.segments > 1);
    }

    #[test]
    fn cap_can_be_removed() {
        let sim = Simulator::new(DesignPoint::rasa_wlbp())
            .unwrap()
            .with_matmul_cap(None)
            .unwrap();
        assert_eq!(sim.matmul_cap(), None);
        let report = sim.run_gemm(GemmShape::new(128, 128, 128)).unwrap();
        assert!(!report.is_extrapolated());
        assert_eq!(report.simulated_matmuls, 8 * 4 * 8);
    }

    #[test]
    fn matmul_cap_has_a_single_source_of_truth() {
        // The cap reported by the simulator is read from the kernel
        // configuration, so a kernel override cannot leave a stale copy.
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert_eq!(sim.matmul_cap(), Some(DEFAULT_MATMUL_CAP));
        let sim = sim
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(123))
            .unwrap();
        assert_eq!(sim.matmul_cap(), Some(123));
        let sim = sim.with_kernel(GemmKernelConfig::amx_like()).unwrap();
        assert_eq!(sim.matmul_cap(), None);
    }

    #[test]
    fn zero_cap_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.with_matmul_cap(Some(0)).is_err());
    }

    #[test]
    fn zero_segment_size_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(matches!(
            sim.with_segment_size(0),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn empty_gemm_is_rejected() {
        let sim = Simulator::new(DesignPoint::baseline()).unwrap();
        assert!(sim.run_gemm(GemmShape::new(0, 1, 1)).is_err());
    }
}
