//! Ablation studies beyond the paper's own figures.
//!
//! * **Kernel blocking** — how much of the WLBP/WLS benefit comes from the
//!   consecutive weight-register reuse the micro-kernel exposes. The paper's
//!   Algorithm 1 reuses each weight register twice in a row; an interleaved
//!   emission order removes that reuse entirely. The paper's reported WLBP
//!   reduction (30.9 %) falls between the two extremes, consistent with
//!   LIBXSMM kernels exposing partial reuse.
//! * **Host CPU sensitivity** — how the best design's speedup varies with
//!   the reorder-buffer size and the engine:core clock ratio, showing that
//!   the matrix engine (not the out-of-order window) is the bottleneck for
//!   every paper-sized configuration.

use crate::{DesignPoint, ExperimentRunner, ExperimentSpec, SimError, SimJob};
use rasa_cpu::CpuConfig;
use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};
use rasa_trace::{GemmKernelConfig, MatmulOrder};
use rasa_workloads::WorkloadSuite;
use std::fmt;

/// One cell of the kernel-blocking ablation: a design under a given
/// `rasa_mm` emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingAblationRow {
    /// Emission order label.
    pub order: MatmulOrder,
    /// Design name.
    pub design: String,
    /// Average runtime reduction vs. the baseline under the same order.
    pub reduction: f64,
    /// Average weight-load bypass rate observed by the engine.
    pub bypass_rate: f64,
}

/// The kernel-blocking ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingAblationResult {
    /// One row per (order, design) pair.
    pub rows: Vec<BlockingAblationRow>,
}

/// One cell of the host-CPU ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuAblationRow {
    /// Reorder-buffer size of the host core.
    pub rob_size: usize,
    /// Engine cycles per core cycle (the paper uses 4: 2 GHz core, 500 MHz
    /// engine).
    pub clock_ratio: u32,
    /// Runtime reduction of RASA-DMDB-WLS vs. the baseline with the same
    /// host configuration.
    pub reduction: f64,
}

/// The host-CPU ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuAblationResult {
    /// One row per (ROB size, clock ratio) pair.
    pub rows: Vec<CpuAblationRow>,
}

/// The layers used by the ablations (one per workload family keeps the
/// runtime modest while covering conv and FC shapes).
fn ablation_layers() -> Vec<rasa_workloads::LayerSpec> {
    let suite = WorkloadSuite::mlperf();
    ["ResNet50-3", "DLRM-1", "BERT-2"]
        .iter()
        .filter_map(|name| suite.layer(name).cloned())
        .collect()
}

/// The designs compared by the blocking ablation.
fn blocking_designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::rasa_pipe(),
        DesignPoint::rasa_wlbp(),
        DesignPoint::rasa_db_wls(),
        DesignPoint::rasa_dmdb_wls(),
    ]
}

pub(super) fn run_blocking(runner: &ExperimentRunner) -> Result<BlockingAblationResult, SimError> {
    let layers = ablation_layers();
    let orders = [MatmulOrder::WeightPaired, MatmulOrder::Interleaved];

    // One declarative spec per emission order: the baseline leads the
    // design list so each run group normalizes against the same-order
    // baseline.
    let mut rows = Vec::new();
    for order in orders {
        let mut kernel = GemmKernelConfig::default().with_matmul_order(order);
        kernel.max_matmuls = runner.matmul_cap();
        let mut designs = vec![DesignPoint::baseline()];
        designs.extend(blocking_designs());
        let spec = ExperimentSpec {
            name: "ablation-blocking",
            workloads: layers.clone(),
            designs,
            kernel: Some(kernel),
        };
        let runs = runner.run_spec(&spec)?;

        for (design_idx, design) in spec.designs.iter().enumerate().skip(1) {
            let (mut norm_sum, mut bypass_sum) = (0.0, 0.0);
            for run in &runs {
                let baseline = &run.reports[0];
                let report = &run.reports[design_idx];
                norm_sum += report.normalized_runtime_vs(baseline);
                bypass_sum += report.cpu.engine.bypass_rate();
            }
            rows.push(BlockingAblationRow {
                order,
                design: design.name().to_string(),
                reduction: 1.0 - norm_sum / runs.len() as f64,
                bypass_rate: bypass_sum / runs.len() as f64,
            });
        }
    }
    Ok(BlockingAblationResult { rows })
}

/// The (ROB size, clock ratio) grid of the host-CPU ablation.
const CPU_ABLATION_ROBS: [usize; 4] = [32, 64, 97, 192];
const CPU_ABLATION_RATIOS: [u32; 3] = [2, 4, 8];

/// The {baseline, RASA-DMDB-WLS} pair for one host configuration.
fn cpu_ablation_designs(rob_size: usize, clock_ratio: u32) -> Result<[DesignPoint; 2], SimError> {
    let mut cpu = CpuConfig::skylake_like();
    cpu.rob_size = rob_size;
    let baseline_systolic = SystolicConfig::new(
        32,
        16,
        PeVariant::Baseline,
        ControlScheme::Base,
        clock_ratio,
    )?;
    let rasa_systolic =
        SystolicConfig::new(16, 16, PeVariant::Dmdb, ControlScheme::Wls, clock_ratio)?;
    Ok([
        DesignPoint::new("BASELINE", baseline_systolic, cpu),
        DesignPoint::new("RASA-DMDB-WLS", rasa_systolic, cpu),
    ])
}

pub(super) fn run_cpu(runner: &ExperimentRunner) -> Result<CpuAblationResult, SimError> {
    let layers = ablation_layers();

    // Declare the full (host config × design × layer) job list up front so
    // the runner executes the whole ablation as one parallel batch.
    let mut jobs = Vec::new();
    for rob_size in CPU_ABLATION_ROBS {
        for clock_ratio in CPU_ABLATION_RATIOS {
            for design in cpu_ablation_designs(rob_size, clock_ratio)? {
                jobs.extend(
                    layers
                        .iter()
                        .map(|layer| SimJob::new(design.clone(), layer.clone())),
                );
            }
        }
    }
    let reports = runner.run_jobs(&jobs)?;

    // Post-process per host configuration: jobs were laid out as
    // [baseline × layers, rasa × layers] per (rob, ratio) pair.
    let per_config = 2 * layers.len();
    let mut rows = Vec::new();
    for (config_idx, chunk) in reports.chunks(per_config).enumerate() {
        let rob_size = CPU_ABLATION_ROBS[config_idx / CPU_ABLATION_RATIOS.len()];
        let clock_ratio = CPU_ABLATION_RATIOS[config_idx % CPU_ABLATION_RATIOS.len()];
        let (base_reports, rasa_reports) = chunk.split_at(layers.len());
        let avg = base_reports
            .iter()
            .zip(rasa_reports)
            .map(|(base, fast)| fast.normalized_runtime_vs(base))
            .sum::<f64>()
            / layers.len() as f64;
        rows.push(CpuAblationRow {
            rob_size,
            clock_ratio,
            reduction: 1.0 - avg,
        });
    }
    Ok(CpuAblationResult { rows })
}

impl BlockingAblationResult {
    /// The row for a given order and design, if present.
    #[must_use]
    pub fn row(&self, order: MatmulOrder, design: &str) -> Option<&BlockingAblationRow> {
        self.rows
            .iter()
            .find(|r| r.order == order && r.design == design)
    }
}

impl fmt::Display for BlockingAblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — kernel blocking (consecutive weight reuse) sensitivity"
        )?;
        writeln!(
            f,
            "{:>16}{:>18}{:>14}{:>14}",
            "design", "mm order", "reduction", "bypass rate"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>16}{:>18}{:>13.1}%{:>13.1}%",
                row.design,
                row.order.label(),
                row.reduction * 100.0,
                row.bypass_rate * 100.0
            )?;
        }
        Ok(())
    }
}

impl CpuAblationResult {
    /// The row for a given ROB size and clock ratio, if present.
    #[must_use]
    pub fn row(&self, rob_size: usize, clock_ratio: u32) -> Option<&CpuAblationRow> {
        self.rows
            .iter()
            .find(|r| r.rob_size == rob_size && r.clock_ratio == clock_ratio)
    }
}

impl fmt::Display for CpuAblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — RASA-DMDB-WLS runtime reduction vs host ROB size and clock ratio"
        )?;
        writeln!(f, "{:>10}{:>14}{:>14}", "ROB", "engine:core", "reduction")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>10}{:>13}x{:>13.1}%",
                row.rob_size,
                row.clock_ratio,
                row.reduction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentSuite;

    #[test]
    fn blocking_ablation_shows_wlbp_sensitivity_and_wls_robustness() {
        let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
        let result = run_blocking(suite.runner()).unwrap();
        assert_eq!(result.rows.len(), 8);

        let wlbp_paired = result.row(MatmulOrder::WeightPaired, "RASA-WLBP").unwrap();
        let wlbp_interleaved = result.row(MatmulOrder::Interleaved, "RASA-WLBP").unwrap();
        let pipe_interleaved = result.row(MatmulOrder::Interleaved, "RASA-PIPE").unwrap();
        // WLBP loses most of its advantage without consecutive reuse…
        assert!(wlbp_paired.reduction > wlbp_interleaved.reduction + 0.15);
        assert!(wlbp_paired.bypass_rate > 0.4);
        assert!(wlbp_interleaved.bypass_rate < 0.05);
        // …degenerating to roughly PIPE.
        assert!((wlbp_interleaved.reduction - pipe_interleaved.reduction).abs() < 0.05);

        // The WLS designs stay near their ceiling under either order.
        let dmdb_paired = result
            .row(MatmulOrder::WeightPaired, "RASA-DMDB-WLS")
            .unwrap();
        let dmdb_interleaved = result
            .row(MatmulOrder::Interleaved, "RASA-DMDB-WLS")
            .unwrap();
        assert!(dmdb_paired.reduction > 0.6);
        assert!(dmdb_interleaved.reduction > 0.6);
        assert!((dmdb_paired.reduction - dmdb_interleaved.reduction).abs() < 0.1);

        assert!(result.to_string().contains("interleaved"));
    }

    #[test]
    fn cpu_ablation_is_insensitive_to_rob_size_at_paper_scale() {
        let suite = ExperimentSuite::new().with_matmul_cap(Some(160));
        let result = run_cpu(suite.runner()).unwrap();
        assert_eq!(result.rows.len(), 12);
        // At the paper's clock ratio the reduction barely moves with ROB
        // size: the engine, not the window, is the bottleneck.
        let r32 = result.row(32, 4).unwrap().reduction;
        let r97 = result.row(97, 4).unwrap().reduction;
        let r192 = result.row(192, 4).unwrap().reduction;
        assert!((r97 - r192).abs() < 0.05);
        assert!(r97 > 0.6);
        assert!(r32 > 0.4);
        // Every configuration still shows a large benefit.
        assert!(result.rows.iter().all(|r| r.reduction > 0.3));
        assert!(result.to_string().contains("ROB"));
    }
}
