//! Experiment runners that regenerate every figure and table of the paper's
//! evaluation (§V).
//!
//! Each experiment returns a plain-data result struct with a `Display`
//! implementation that prints a paper-style table, so the `rasa-bench`
//! binaries can simply run and print them, and tests can assert on the
//! numbers.

mod ablation;
mod area_energy;
mod fig1;
mod fig2;
mod fig5;
mod fig6;
mod fig7;

pub use ablation::{
    BlockingAblationResult, BlockingAblationRow, CpuAblationResult, CpuAblationRow,
};
pub use area_energy::{AreaEnergyResult, AreaEnergyRow};
pub use fig1::Fig1Result;
pub use fig2::Fig2Result;
pub use fig5::{Fig5Result, Fig5Row};
pub use fig6::{Fig6Result, Fig6Row};
pub use fig7::{Fig7Result, Fig7Row};

use crate::SimError;

/// Configuration shared by all experiment runners.
///
/// `matmul_cap` bounds the number of `rasa_mm` instructions simulated per
/// workload/design pair; the full-workload runtime is extrapolated from the
/// simulated steady state (see [`crate::SimReport`]). The default of 4096
/// reproduces stable normalized runtimes in seconds of wall-clock time; the
/// experiment binaries expose a flag to raise it (or remove it entirely) for
/// full-fidelity runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentSuite {
    matmul_cap: Option<usize>,
    fig7_max_batch: usize,
}

impl ExperimentSuite {
    /// Creates the suite with the default per-run matmul cap.
    #[must_use]
    pub fn new() -> Self {
        ExperimentSuite {
            matmul_cap: Some(crate::simulator::DEFAULT_MATMUL_CAP),
            fig7_max_batch: 1024,
        }
    }

    /// Overrides the per-run matmul cap (`None` simulates every tile).
    #[must_use]
    pub const fn with_matmul_cap(mut self, cap: Option<usize>) -> Self {
        self.matmul_cap = cap;
        self
    }

    /// Restricts the Fig. 7 sweep to batch sizes up to `max_batch`
    /// (inclusive); the paper sweeps up to 1024.
    #[must_use]
    pub const fn with_fig7_max_batch(mut self, max_batch: usize) -> Self {
        self.fig7_max_batch = max_batch;
        self
    }

    /// The configured matmul cap.
    #[must_use]
    pub const fn matmul_cap(&self) -> Option<usize> {
        self.matmul_cap
    }

    /// The configured Fig. 7 batch ceiling.
    #[must_use]
    pub const fn fig7_max_batch(&self) -> usize {
        self.fig7_max_batch
    }

    /// Fig. 1: the 2×2 weight-stationary walkthrough (per-cycle utilization,
    /// 28.6 % average).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Design`] if the toy array configuration is
    /// rejected (it never is).
    pub fn fig1_toy(&self) -> Result<Fig1Result, SimError> {
        fig1::run()
    }

    /// Fig. 2: PE utilization versus TM for square arrays of several sizes.
    #[must_use]
    pub fn fig2_utilization(&self) -> Fig2Result {
        fig2::run()
    }

    /// Fig. 5: runtime of the baseline and the seven RASA designs on the
    /// nine Table I layers, normalized to the baseline.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig5_runtime(&self) -> Result<Fig5Result, SimError> {
        fig5::run(self)
    }

    /// Fig. 6: performance-per-area of the three RASA-Data designs (each
    /// with its best control scheme), derived from a Fig. 5 run.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig6_ppa(&self) -> Result<Fig6Result, SimError> {
        let fig5 = self.fig5_runtime()?;
        Ok(fig6::from_fig5(&fig5))
    }

    /// Fig. 6 derived from an existing Fig. 5 result (avoids re-running the
    /// simulations).
    #[must_use]
    pub fn fig6_from(&self, fig5: &Fig5Result) -> Fig6Result {
        fig6::from_fig5(fig5)
    }

    /// Fig. 7: batch-size sensitivity of RASA-DMDB-WLS on the FC layers.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig7_batch(&self) -> Result<Fig7Result, SimError> {
        fig7::run(self)
    }

    /// The §V area and energy-efficiency comparison of the RASA-Data
    /// designs, derived from a Fig. 5 run.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn area_energy(&self) -> Result<AreaEnergyResult, SimError> {
        let fig5 = self.fig5_runtime()?;
        Ok(area_energy::from_fig5(&fig5))
    }

    /// Area/energy table derived from an existing Fig. 5 result.
    #[must_use]
    pub fn area_energy_from(&self, fig5: &Fig5Result) -> AreaEnergyResult {
        area_energy::from_fig5(fig5)
    }

    /// Ablation: sensitivity of the RASA-Control benefit to the consecutive
    /// weight-register reuse exposed by the micro-kernel emission order.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn ablation_blocking(&self) -> Result<BlockingAblationResult, SimError> {
        ablation::run_blocking(self)
    }

    /// Ablation: sensitivity of the best design's speedup to the host CPU's
    /// reorder-buffer size and the engine:core clock ratio.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn ablation_cpu(&self) -> Result<CpuAblationResult, SimError> {
        ablation::run_cpu(self)
    }
}

impl Default for ExperimentSuite {
    fn default() -> Self {
        ExperimentSuite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_configuration() {
        let s = ExperimentSuite::new();
        assert_eq!(s.matmul_cap(), Some(4096));
        assert_eq!(s.fig7_max_batch(), 1024);
        let s = s.with_matmul_cap(Some(128)).with_fig7_max_batch(64);
        assert_eq!(s.matmul_cap(), Some(128));
        assert_eq!(s.fig7_max_batch(), 64);
        assert_eq!(ExperimentSuite::default(), ExperimentSuite::new());
    }
}
