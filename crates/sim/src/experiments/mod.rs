//! Experiment runners that regenerate every figure and table of the paper's
//! evaluation (§V).
//!
//! Each experiment module is a thin declarative layer over the shared
//! [`ExperimentRunner`](crate::ExperimentRunner): it contributes an
//! [`ExperimentSpec`](crate::ExperimentSpec) (which workloads × designs to
//! simulate, under which kernel) plus post-processing of the resulting
//! [`WorkloadRun`](crate::WorkloadRun)s into a plain-data result struct with
//! a `Display` implementation that prints a paper-style table. The runner
//! owns iteration, parallelism and per-cell memoization, so results shared
//! between figures (Fig. 5 feeds Fig. 6 and the area/energy table; Fig. 7
//! re-uses baseline cells across batch sizes) are simulated exactly once.

mod ablation;
mod area_energy;
mod fig1;
mod fig2;
mod fig5;
mod fig6;
mod fig7;

pub use ablation::{
    BlockingAblationResult, BlockingAblationRow, CpuAblationResult, CpuAblationRow,
};
pub use area_energy::{AreaEnergyResult, AreaEnergyRow};
pub use fig1::Fig1Result;
pub use fig2::Fig2Result;
pub use fig5::{Fig5Result, Fig5Row};
pub use fig6::{Fig6Result, Fig6Row};
pub use fig7::{Fig7Result, Fig7Row};

use crate::{ExperimentRunner, SimError};
use rasa_workloads::{LayerSpec, WorkloadSuite};
use std::sync::Arc;

/// Selects the Table I layers matching a `--layers`-style filter:
/// comma-separated tokens, each either a 1-based index into the Table I
/// order or a case-insensitive substring of a layer name. Presentation
/// order is preserved.
fn filter_layers(all: &[LayerSpec], filter: &str) -> Vec<LayerSpec> {
    let tokens: Vec<String> = filter
        .split(',')
        .map(|token| token.trim().to_ascii_lowercase())
        .filter(|token| !token.is_empty())
        .collect();
    all.iter()
        .enumerate()
        .filter(|(position, layer)| {
            tokens.iter().any(|token| match token.parse::<usize>() {
                Ok(index) => index == position + 1,
                Err(_) => layer.name().to_ascii_lowercase().contains(token),
            })
        })
        .map(|(_, layer)| layer.clone())
        .collect()
}

/// Facade over the full paper evaluation: one method per figure/table, all
/// executing through one shared, memoizing [`ExperimentRunner`].
///
/// `matmul_cap` bounds the number of `rasa_mm` instructions simulated per
/// workload/design pair; the full-workload runtime is extrapolated from the
/// simulated steady state (see [`crate::SimReport`]). The default of 4096
/// reproduces stable normalized runtimes in seconds of wall-clock time; the
/// experiment binaries expose a flag to raise it (or remove it entirely)
/// for full-fidelity runs.
///
/// Cloning the suite shares the underlying runner (and its cell cache);
/// reconfiguring via the `with_*` methods builds a fresh runner.
#[derive(Debug, Clone)]
pub struct ExperimentSuite {
    fig7_max_batch: usize,
    /// The Table I layers the matrix experiments run over — all nine by
    /// default, a subset under a layer filter.
    layers: Vec<LayerSpec>,
    /// The original filter expression, kept so reconfiguration rebuilds
    /// resolve it again.
    layer_filter: Option<String>,
    runner: Arc<ExperimentRunner>,
}

impl ExperimentSuite {
    /// Creates the suite with the default per-run matmul cap, executing in
    /// parallel.
    #[must_use]
    pub fn new() -> Self {
        ExperimentSuite::builder()
            .build()
            .expect("default suite configuration is valid")
    }

    /// Starts building a suite (kubecl-style typed config builder).
    #[must_use]
    pub fn builder() -> ExperimentSuiteBuilder {
        ExperimentSuiteBuilder::default()
    }

    /// Overrides the per-run matmul cap (`None` simulates every tile),
    /// building a fresh runner (and cache).
    ///
    /// # Panics
    ///
    /// Panics on a cap of `Some(0)`; use
    /// [`ExperimentSuite::builder`] for fallible configuration.
    #[must_use]
    pub fn with_matmul_cap(self, cap: Option<usize>) -> Self {
        ExperimentSuite::builder()
            .with_matmul_cap(cap)
            .with_fig7_max_batch(self.fig7_max_batch)
            .with_parallel(self.runner.is_parallel())
            .with_streaming(self.runner.is_streaming())
            .with_segment_size(self.runner.segment_size())
            .with_speculation(self.runner.is_speculative())
            .with_spec_depth(self.runner.spec_depth())
            .with_layer_filter(self.layer_filter.clone())
            .build()
            .expect("matmul cap must be at least 1 (or None for uncapped)")
    }

    /// Restricts the Fig. 7 sweep to batch sizes up to `max_batch`
    /// (inclusive); the paper sweeps up to 1024.
    #[must_use]
    pub fn with_fig7_max_batch(mut self, max_batch: usize) -> Self {
        self.fig7_max_batch = max_batch;
        self
    }

    /// The configured matmul cap.
    #[must_use]
    pub fn matmul_cap(&self) -> Option<usize> {
        self.runner.matmul_cap()
    }

    /// The configured Fig. 7 batch ceiling.
    #[must_use]
    pub const fn fig7_max_batch(&self) -> usize {
        self.fig7_max_batch
    }

    /// The shared execution pipeline behind every experiment.
    #[must_use]
    pub fn runner(&self) -> &ExperimentRunner {
        &self.runner
    }

    /// The Table I layers the matrix experiments run over (all nine unless
    /// a layer filter narrowed them).
    #[must_use]
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Fig. 1: the 2×2 weight-stationary walkthrough (per-cycle utilization,
    /// 28.6 % average).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Design`] if the toy array configuration is
    /// rejected (it never is).
    pub fn fig1_toy(&self) -> Result<Fig1Result, SimError> {
        fig1::run()
    }

    /// Fig. 2: PE utilization versus TM for square arrays of several sizes.
    #[must_use]
    pub fn fig2_utilization(&self) -> Fig2Result {
        fig2::run()
    }

    /// Fig. 5: runtime of the baseline and the seven RASA designs on the
    /// nine Table I layers, normalized to the baseline.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig5_runtime(&self) -> Result<Fig5Result, SimError> {
        fig5::run(self.runner(), &self.layers)
    }

    /// Fig. 6: performance-per-area of the three RASA-Data designs (each
    /// with its best control scheme), derived from a Fig. 5 run (cached by
    /// the shared runner, so deriving after a Fig. 5 call costs nothing
    /// extra).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig6_ppa(&self) -> Result<Fig6Result, SimError> {
        let fig5 = self.fig5_runtime()?;
        Ok(fig6::from_fig5(&fig5))
    }

    /// Fig. 6 derived from an existing Fig. 5 result.
    #[must_use]
    pub fn fig6_from(&self, fig5: &Fig5Result) -> Fig6Result {
        fig6::from_fig5(fig5)
    }

    /// Fig. 7: batch-size sensitivity of RASA-DMDB-WLS on the FC layers.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fig7_batch(&self) -> Result<Fig7Result, SimError> {
        fig7::run(self.runner(), &self.layers, self.fig7_max_batch)
    }

    /// The §V area and energy-efficiency comparison of the RASA-Data
    /// designs, derived from a Fig. 5 run (cached by the shared runner).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn area_energy(&self) -> Result<AreaEnergyResult, SimError> {
        let fig5 = self.fig5_runtime()?;
        Ok(area_energy::from_fig5(&fig5))
    }

    /// Area/energy table derived from an existing Fig. 5 result.
    #[must_use]
    pub fn area_energy_from(&self, fig5: &Fig5Result) -> AreaEnergyResult {
        area_energy::from_fig5(fig5)
    }

    /// Ablation: sensitivity of the RASA-Control benefit to the consecutive
    /// weight-register reuse exposed by the micro-kernel emission order.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn ablation_blocking(&self) -> Result<BlockingAblationResult, SimError> {
        ablation::run_blocking(self.runner())
    }

    /// Ablation: sensitivity of the best design's speedup to the host CPU's
    /// reorder-buffer size and the engine:core clock ratio.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn ablation_cpu(&self) -> Result<CpuAblationResult, SimError> {
        ablation::run_cpu(self.runner())
    }
}

impl Default for ExperimentSuite {
    fn default() -> Self {
        ExperimentSuite::new()
    }
}

/// Builder for [`ExperimentSuite`], following the kubecl
/// `TilingSchemeBuilder` idiom: optional typed fields, validated at
/// [`build`](Self::build).
#[derive(Debug, Default)]
pub struct ExperimentSuiteBuilder {
    matmul_cap: Option<Option<usize>>,
    fig7_max_batch: Option<usize>,
    parallel: Option<bool>,
    streaming: Option<bool>,
    segment_size: Option<usize>,
    speculation: Option<bool>,
    spec_depth: Option<usize>,
    layer_filter: Option<String>,
}

impl ExperimentSuiteBuilder {
    /// Caps the simulated `rasa_mm` instructions per workload/design pair
    /// (`None` simulates every tile).
    #[must_use]
    pub fn with_matmul_cap(mut self, cap: Option<usize>) -> Self {
        self.matmul_cap = Some(cap);
        self
    }

    /// Restricts the Fig. 7 sweep to batch sizes up to `max_batch`.
    #[must_use]
    pub fn with_fig7_max_batch(mut self, max_batch: usize) -> Self {
        self.fig7_max_batch = Some(max_batch);
        self
    }

    /// Selects parallel (default) or serial execution.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Forces strict serial execution.
    #[must_use]
    pub fn serial(self) -> Self {
        self.with_parallel(false)
    }

    /// Selects the streaming trace→simulate pipeline (default) or the
    /// materialized path for every cell.
    #[must_use]
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = Some(streaming);
        self
    }

    /// Overrides the target streamed-segment size in instructions.
    #[must_use]
    pub fn with_segment_size(mut self, segment_size: usize) -> Self {
        self.segment_size = Some(segment_size);
        self
    }

    /// Enables (default) or disables the speculative fork/join segment
    /// scheduler for streamed cells.
    #[must_use]
    pub fn with_speculation(mut self, speculation: bool) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Overrides the number of speculative workers per fork/join wave.
    #[must_use]
    pub fn with_spec_depth(mut self, spec_depth: usize) -> Self {
        self.spec_depth = Some(spec_depth);
        self
    }

    /// Restricts the matrix experiments to the Table I layers matching
    /// `filter`: comma-separated tokens, each a 1-based Table I index or a
    /// case-insensitive substring of a layer name (`"DLRM"`, `"BERT-2"`,
    /// `"1,resnet50-3"`, …). `None` keeps all nine layers.
    #[must_use]
    pub fn with_layer_filter(mut self, filter: Option<String>) -> Self {
        self.layer_filter = filter;
        self
    }

    /// Validates the configuration and builds the suite (and its runner).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for a zero matmul cap, a
    /// zero segment size or a layer filter matching no Table I layer.
    pub fn build(self) -> Result<ExperimentSuite, SimError> {
        let parallel = self.parallel.unwrap_or(true);
        let mut runner_builder = ExperimentRunner::builder()
            .with_parallel(parallel)
            .with_streaming(self.streaming.unwrap_or(true));
        if let Some(cap) = self.matmul_cap {
            runner_builder = runner_builder.with_matmul_cap(cap);
        }
        if let Some(segment_size) = self.segment_size {
            runner_builder = runner_builder.with_segment_size(segment_size);
        }
        if let Some(speculation) = self.speculation {
            runner_builder = runner_builder.with_speculation(speculation);
        }
        if let Some(spec_depth) = self.spec_depth {
            runner_builder = runner_builder.with_spec_depth(spec_depth);
        }
        let runner = runner_builder.build()?;
        let all_layers = WorkloadSuite::mlperf().layers().to_vec();
        let layers = match &self.layer_filter {
            Some(filter) => {
                let selected = filter_layers(&all_layers, filter);
                if selected.is_empty() {
                    return Err(SimError::InvalidExperiment {
                        reason: format!("layer filter '{filter}' matches no Table I layer"),
                    });
                }
                selected
            }
            None => all_layers,
        };
        Ok(ExperimentSuite {
            fig7_max_batch: self.fig7_max_batch.unwrap_or(1024),
            layers,
            layer_filter: self.layer_filter,
            runner: Arc::new(runner),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_configuration() {
        let s = ExperimentSuite::new();
        assert_eq!(s.matmul_cap(), Some(4096));
        assert_eq!(s.fig7_max_batch(), 1024);
        assert!(s.runner().is_parallel());
        let s = s.with_matmul_cap(Some(128)).with_fig7_max_batch(64);
        assert_eq!(s.matmul_cap(), Some(128));
        assert_eq!(s.fig7_max_batch(), 64);
        assert_eq!(s.runner().matmul_cap(), Some(128));
        let d = ExperimentSuite::default();
        assert_eq!(d.matmul_cap(), Some(4096));
        assert_eq!(d.fig7_max_batch(), 1024);
    }

    #[test]
    fn builder_covers_every_field() {
        let s = ExperimentSuite::builder()
            .with_matmul_cap(Some(96))
            .with_fig7_max_batch(32)
            .serial()
            .build()
            .unwrap();
        assert_eq!(s.matmul_cap(), Some(96));
        assert_eq!(s.fig7_max_batch(), 32);
        assert!(!s.runner().is_parallel());
        assert!(matches!(
            ExperimentSuite::builder().with_matmul_cap(Some(0)).build(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn layer_filter_narrows_the_matrix() {
        // Tokens are substrings or 1-based Table I indices, comma-separated.
        let s = ExperimentSuite::builder()
            .with_matmul_cap(Some(96))
            .with_fig7_max_batch(16)
            .with_layer_filter(Some("dlrm,9".to_string()))
            .build()
            .unwrap();
        let names: Vec<&str> = s.layers().iter().map(|l| l.name()).collect();
        assert_eq!(names, ["DLRM-1", "DLRM-2", "DLRM-3", "BERT-3"]);
        let fig5 = s.fig5_runtime().unwrap();
        assert_eq!(fig5.rows.len(), 4);
        let fig7 = s.fig7_batch().unwrap();
        assert_eq!(fig7.layers().len(), 4, "fig7 sweeps the filtered FCs");

        // A conv-only filter leaves the FC batch sweep empty, not failing.
        let conv_only = ExperimentSuite::builder()
            .with_matmul_cap(Some(96))
            .with_fig7_max_batch(16)
            .with_layer_filter(Some("ResNet50-1".to_string()))
            .build()
            .unwrap();
        assert_eq!(conv_only.layers().len(), 1);
        assert!(conv_only.fig7_batch().unwrap().rows.is_empty());

        // A filter matching nothing is a configuration error.
        assert!(matches!(
            ExperimentSuite::builder()
                .with_layer_filter(Some("not-a-layer".to_string()))
                .build(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn streaming_options_flow_to_the_runner() {
        let s = ExperimentSuite::builder()
            .with_matmul_cap(Some(96))
            .with_streaming(false)
            .with_segment_size(512)
            .with_layer_filter(Some("BERT-1".to_string()))
            .build()
            .unwrap();
        assert!(!s.runner().is_streaming());
        assert_eq!(s.runner().segment_size(), 512);
        // Reconfiguration rebuilds the runner but keeps the streaming
        // options and the resolved layer filter.
        let s = s.with_matmul_cap(Some(64));
        assert!(!s.runner().is_streaming());
        assert_eq!(s.runner().segment_size(), 512);
        assert_eq!(s.layers().len(), 1);
        // The default is the streaming pipeline.
        assert!(ExperimentSuite::new().runner().is_streaming());
    }

    #[test]
    fn clones_share_the_runner_cache() {
        let a = ExperimentSuite::builder()
            .with_matmul_cap(Some(96))
            .build()
            .unwrap();
        let b = a.clone();
        a.fig1_toy().unwrap();
        assert_eq!(
            a.runner().cache_stats(),
            b.runner().cache_stats(),
            "clones observe the same cache"
        );
    }
}
