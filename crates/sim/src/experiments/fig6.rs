//! Fig. 6: performance per area of the RASA-Data designs.

use super::Fig5Result;
use rasa_power::AreaModel;
use rasa_systolic::SystolicConfig;
use std::fmt;

/// One bar of Fig. 6: a RASA-Data design paired with its best control
/// scheme, compared to the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Design name.
    pub design: String,
    /// Average speedup over the baseline (baseline cycles / design cycles).
    pub speedup: f64,
    /// Array area relative to the baseline array.
    pub area_ratio: f64,
    /// Performance per area normalized to the baseline
    /// (`speedup / area_ratio`).
    pub performance_per_area: f64,
}

/// The Fig. 6 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// One row per RASA-Data design (DB-WLS, DM-WLBP, DMDB-WLS).
    pub rows: Vec<Fig6Row>,
}

/// The designs Fig. 6 compares (paired with their best control scheme, as
/// in the paper).
const FIG6_DESIGNS: [&str; 3] = ["RASA-DB-WLS", "RASA-DM-WLBP", "RASA-DMDB-WLS"];

pub(super) fn from_fig5(fig5: &Fig5Result) -> Fig6Result {
    let area_model = AreaModel::new();
    let baseline_area = area_model.array_area_mm2(&SystolicConfig::paper_baseline());

    let rows = FIG6_DESIGNS
        .iter()
        .filter_map(|&design| {
            let normalized = fig5.average_normalized(design)?;
            let speedup = if normalized > 0.0 {
                1.0 / normalized
            } else {
                0.0
            };
            // Recover the systolic configuration from the design name via
            // the runs recorded in the Fig. 5 result.
            let area = fig5
                .runs
                .iter()
                .flat_map(|run| run.reports.iter())
                .find(|r| r.design == design)
                .map_or(baseline_area, |r| r.power.area.total());
            let area_ratio = area / baseline_area;
            Some(Fig6Row {
                design: design.to_string(),
                speedup,
                area_ratio,
                performance_per_area: speedup / area_ratio,
            })
        })
        .collect();
    Fig6Result { rows }
}

impl Fig6Result {
    /// The row for a given design, if present.
    #[must_use]
    pub fn row(&self, design: &str) -> Option<&Fig6Row> {
        self.rows.iter().find(|r| r.design == design)
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — performance per area normalized to the baseline"
        )?;
        writeln!(
            f,
            "{:>16}{:>12}{:>12}{:>12}",
            "design", "speedup", "area ratio", "PPA"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>16}{:>12.2}{:>12.3}{:>12.2}",
                row.design, row.speedup, row.area_ratio, row.performance_per_area
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ExperimentSuite;

    #[test]
    fn ppa_follows_runtime_because_area_overheads_are_small() {
        let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
        let fig5 = suite.fig5_runtime().unwrap();
        let fig6 = suite.fig6_from(&fig5);
        assert_eq!(fig6.rows.len(), 3);

        let db = fig6.row("RASA-DB-WLS").unwrap();
        let dm = fig6.row("RASA-DM-WLBP").unwrap();
        let dmdb = fig6.row("RASA-DMDB-WLS").unwrap();

        // Area overheads are a few percent, so PPA tracks the speedup.
        for row in &fig6.rows {
            assert!(row.area_ratio > 1.0 && row.area_ratio < 1.10, "{row:?}");
            assert!(row.performance_per_area > 0.9 * row.speedup);
        }
        // The paper's ordering: both WLS designs beat DM-WLBP, and DMDB-WLS
        // is at least as good as DB-WLS.
        assert!(db.performance_per_area > dm.performance_per_area);
        assert!(dmdb.performance_per_area >= db.performance_per_area * 0.95);
        assert!(fig6.row("BASELINE").is_none());
        assert!(fig6.to_string().contains("PPA"));
    }
}
