//! Fig. 5: runtime of every RASA design on the Table I layers, normalized
//! to the baseline.
//!
//! The module is a declarative spec against the shared
//! [`ExperimentRunner`]: the nine Table I layers × the eight paper designs,
//! default kernel. All iteration, parallelism and caching live in the
//! runner.

use crate::{DesignPoint, ExperimentRunner, ExperimentSpec, SimError, WorkloadRun};
use rasa_workloads::LayerSpec;
use std::fmt;

/// One row of the Fig. 5 comparison: a workload and its normalized runtime
/// under every design.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload (Table I layer) name.
    pub workload: String,
    /// `(design name, normalized runtime)` pairs in design order; the
    /// baseline is 1.0 by construction.
    pub normalized: Vec<(String, f64)>,
}

/// The full Fig. 5 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Design names in presentation order.
    pub designs: Vec<String>,
    /// One row per Table I layer.
    pub rows: Vec<Fig5Row>,
    /// The underlying per-workload runs (kept so Fig. 6 and the area/energy
    /// table can be derived without re-simulating).
    pub runs: Vec<WorkloadRun>,
}

/// The declarative Fig. 5 matrix: the suite's (possibly filtered) Table I
/// layers × the eight paper designs.
pub(super) fn spec(workloads: &[LayerSpec]) -> ExperimentSpec {
    ExperimentSpec {
        name: "fig5",
        workloads: workloads.to_vec(),
        designs: DesignPoint::paper_designs(),
        kernel: None,
    }
}

pub(super) fn run(
    runner: &ExperimentRunner,
    workloads: &[LayerSpec],
) -> Result<Fig5Result, SimError> {
    let spec = spec(workloads);
    let design_names: Vec<String> = spec.designs.iter().map(|d| d.name().to_string()).collect();
    let runs = runner.run_spec(&spec)?;
    let rows = runs
        .iter()
        .map(|run| Fig5Row {
            workload: run.workload.clone(),
            normalized: run.normalized_runtimes(),
        })
        .collect();
    Ok(Fig5Result {
        designs: design_names,
        rows,
        runs,
    })
}

impl Fig5Result {
    /// The normalized runtime of `design` on `workload`, if present.
    #[must_use]
    pub fn normalized(&self, workload: &str, design: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload)
            .and_then(|r| r.normalized.iter().find(|(d, _)| d == design))
            .map(|(_, v)| *v)
    }

    /// The average normalized runtime of a design across all workloads.
    #[must_use]
    pub fn average_normalized(&self, design: &str) -> Option<f64> {
        let values: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.normalized
                    .iter()
                    .find(|(d, _)| d == design)
                    .map(|(_, v)| *v)
            })
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// The average runtime *reduction* of a design (the number the paper
    /// quotes: e.g. "WLBP reduces runtime by 30.9 % on average").
    #[must_use]
    pub fn average_reduction(&self, design: &str) -> Option<f64> {
        self.average_normalized(design).map(|n| 1.0 - n)
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5 — runtime normalized to the baseline (lower is better)"
        )?;
        write!(f, "{:>12}", "layer")?;
        for d in &self.designs {
            write!(f, "{:>16}", d)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:>12}", row.workload)?;
            for (_, v) in &row.normalized {
                write!(f, "{v:>16.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:>12}", "average")?;
        for d in &self.designs {
            write!(
                f,
                "{:>16.3}",
                self.average_normalized(d).unwrap_or(f64::NAN)
            )?;
        }
        writeln!(f)?;
        write!(f, "{:>12}", "reduction")?;
        for d in &self.designs {
            write!(
                f,
                "{:>15.1}%",
                self.average_reduction(d).unwrap_or(f64::NAN) * 100.0
            )?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentSuite;

    /// A reduced-cap Fig. 5 run used by the unit tests (the full-cap run is
    /// exercised by the benchmark harness).
    fn quick_fig5() -> Fig5Result {
        ExperimentSuite::new()
            .with_matmul_cap(Some(192))
            .fig5_runtime()
            .expect("fig5 runs")
    }

    #[test]
    fn shape_and_baseline_normalization() {
        let r = quick_fig5();
        assert_eq!(r.designs.len(), 8);
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            assert_eq!(row.normalized.len(), 8);
            // The baseline is exactly 1.0 and every RASA design is at least
            // as fast.
            assert!((row.normalized[0].1 - 1.0).abs() < 1e-12);
            for (_, v) in &row.normalized[1..] {
                assert!(*v <= 1.0 + 1e-9, "{row:?}");
            }
        }
        assert!(r.normalized("DLRM-1", "RASA-WLBP").is_some());
        assert!(r.normalized("DLRM-1", "NOT-A-DESIGN").is_none());
        assert!(r.average_normalized("NOT-A-DESIGN").is_none());
    }

    #[test]
    fn average_reductions_follow_the_paper_ordering() {
        let r = quick_fig5();
        let pipe = r.average_reduction("RASA-PIPE").unwrap();
        let wlbp = r.average_reduction("RASA-WLBP").unwrap();
        let dm_wlbp = r.average_reduction("RASA-DM-WLBP").unwrap();
        let db_wls = r.average_reduction("RASA-DB-WLS").unwrap();
        let dmdb_wls = r.average_reduction("RASA-DMDB-WLS").unwrap();
        // Paper: 15.7 %, 30.9 %, 55.5 %, 78.1 %, 79.2 %. The exact values
        // depend on the trace and CPU substrate; the ordering and rough
        // magnitudes must hold.
        assert!(pipe > 0.05 && pipe < 0.35, "pipe {pipe}");
        assert!(wlbp > pipe, "wlbp {wlbp} <= pipe {pipe}");
        assert!(dm_wlbp > wlbp, "dm-wlbp {dm_wlbp} <= wlbp {wlbp}");
        assert!(db_wls > dm_wlbp, "db-wls {db_wls} <= dm-wlbp {dm_wlbp}");
        assert!(dmdb_wls >= db_wls - 0.02, "dmdb-wls {dmdb_wls}");
        assert!(dmdb_wls > 0.6 && dmdb_wls < 0.9, "dmdb-wls {dmdb_wls}");
        let text = r.to_string();
        assert!(text.contains("RASA-DMDB-WLS"));
        assert!(text.contains("reduction"));
    }

    #[test]
    fn relative_performance_is_workload_independent() {
        // The Fig. 5 caption notes the relative performance of the designs
        // is independent of the workload: check the ordering of WLBP vs
        // PIPE holds on every layer.
        let r = quick_fig5();
        for row in &r.rows {
            let get = |d: &str| {
                row.normalized
                    .iter()
                    .find(|(name, _)| name == d)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(get("RASA-PIPE") <= 1.0);
            assert!(
                get("RASA-WLBP") <= get("RASA-PIPE") + 1e-9,
                "{}",
                row.workload
            );
            assert!(
                get("RASA-DMDB-WLS") <= get("RASA-WLBP") + 1e-9,
                "{}",
                row.workload
            );
        }
    }
}
