//! Fig. 7: batch-size sensitivity of RASA-DMDB-WLS.
//!
//! Declarative spec against the shared [`ExperimentRunner`]: the re-batched
//! FC layers (via [`BatchMatrix`]) × {baseline, RASA-DMDB-WLS}. The
//! runner's memoization means the baseline cells are shared with any other
//! experiment that already simulated them.

use crate::{DesignPoint, ExperimentRunner, ExperimentSpec, SimError};
use rasa_workloads::{fig7_batch_sizes, BatchMatrix, LayerSpec};
use std::fmt;

/// The theoretical best-case normalized runtime: a perfectly pipelined
/// `rasa_mm` every TM = 16 cycles against the 95-cycle baseline.
const ASYMPTOTE: f64 = 16.0 / 95.0;

/// One point of the Fig. 7 sweep: a layer at a batch size, with the runtime
/// of RASA-DMDB-WLS normalized to the baseline at the same batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// The FC layer being swept (Table I name, without the batch suffix).
    pub layer: String,
    /// Batch size.
    pub batch: usize,
    /// Normalized runtime (RASA-DMDB-WLS / baseline).
    pub normalized_runtime: f64,
}

/// The full Fig. 7 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Batch sizes swept.
    pub batch_sizes: Vec<usize>,
    /// One row per (layer, batch) pair.
    pub rows: Vec<Fig7Row>,
    /// The theoretical best-case normalized runtime: a perfectly pipelined
    /// `rasa_mm` every TM = 16 cycles against the 95-cycle baseline,
    /// 16/95 ≈ 0.168.
    pub asymptote: f64,
}

/// The declarative Fig. 7 matrix: the FC layers among the suite's
/// (possibly filtered) Table I layers at every batch size up to
/// `max_batch`, against {baseline, RASA-DMDB-WLS}.
pub(super) fn spec(
    workloads: &[LayerSpec],
    max_batch: usize,
) -> Result<(ExperimentSpec, Vec<usize>), SimError> {
    let batch_sizes: Vec<usize> = fig7_batch_sizes()
        .into_iter()
        .filter(|&b| b <= max_batch)
        .collect();
    if batch_sizes.is_empty() {
        return Err(SimError::InvalidExperiment {
            reason: "fig7 batch ceiling excludes every batch size".to_string(),
        });
    }

    // The FC layers (DLRM and BERT); the convolutions are not part of the
    // paper's batch sweep.
    let fc_layers: Vec<LayerSpec> = workloads
        .iter()
        .filter(|l| matches!(l.kind(), rasa_workloads::LayerKind::Fc { .. }))
        .cloned()
        .collect();

    let spec = ExperimentSpec {
        name: "fig7",
        workloads: BatchMatrix::new(&fc_layers, &batch_sizes).collect(),
        designs: vec![DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()],
        kernel: None,
    };
    Ok((spec, batch_sizes))
}

pub(super) fn run(
    runner: &ExperimentRunner,
    workloads: &[LayerSpec],
    max_batch: usize,
) -> Result<Fig7Result, SimError> {
    let (spec, batch_sizes) = spec(workloads, max_batch)?;
    if spec.is_empty() {
        // A layer filter can exclude every FC layer; the batch sweep is
        // then simply empty rather than an error, so filtered runs of the
        // full evaluation still complete.
        return Ok(Fig7Result {
            batch_sizes,
            rows: Vec::new(),
            asymptote: ASYMPTOTE,
        });
    }
    let runs = runner.run_spec(&spec)?;
    let rows = runs
        .iter()
        .zip(&spec.workloads)
        .map(|(run, swept)| Fig7Row {
            layer: swept.base_name().to_string(),
            batch: swept.batch(),
            normalized_runtime: run.reports[1].normalized_runtime_vs(&run.reports[0]),
        })
        .collect();

    Ok(Fig7Result {
        batch_sizes,
        rows,
        asymptote: ASYMPTOTE,
    })
}

impl Fig7Result {
    /// The normalized runtime for a layer at a batch size, if present.
    #[must_use]
    pub fn normalized(&self, layer: &str, batch: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.layer == layer && r.batch == batch)
            .map(|r| r.normalized_runtime)
    }

    /// Layer names present in the sweep, in first-appearance order.
    #[must_use]
    pub fn layers(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for row in &self.rows {
            if !seen.contains(&row.layer) {
                seen.push(row.layer.clone());
            }
        }
        seen
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7 — RASA-DMDB-WLS runtime normalized to the baseline vs batch size"
        )?;
        write!(f, "{:>10}", "layer\\batch")?;
        for b in &self.batch_sizes {
            write!(f, "{b:>8}")?;
        }
        writeln!(f)?;
        for layer in self.layers() {
            write!(f, "{layer:>10}")?;
            for &b in &self.batch_sizes {
                match self.normalized(&layer, b) {
                    Some(v) => write!(f, "{v:>8.3}")?,
                    None => write!(f, "{:>8}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  perfect-pipelining asymptote: {:.3} (16/95)",
            self.asymptote
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentSuite;

    #[test]
    fn batch_sweep_flattens_below_16_and_approaches_the_asymptote() {
        // Keep the test cheap: two batch points per decade and a small cap.
        let suite = ExperimentSuite::new()
            .with_matmul_cap(Some(256))
            .with_fig7_max_batch(256);
        let r = suite.fig7_batch().unwrap();
        assert!((r.asymptote - 16.0 / 95.0).abs() < 1e-9);
        assert_eq!(r.layers().len(), 6);

        for layer in ["DLRM-1", "BERT-1"] {
            // Batches below the 16-row tile granularity all use the same
            // number of rasa_mm instructions → identical normalized runtime.
            let b1 = r.normalized(layer, 1).unwrap();
            let b8 = r.normalized(layer, 8).unwrap();
            let b16 = r.normalized(layer, 16).unwrap();
            assert!((b1 - b8).abs() < 0.02, "{layer}: {b1} vs {b8}");
            assert!((b8 - b16).abs() < 0.02, "{layer}: {b8} vs {b16}");

            // Larger batches approach (but never beat) the asymptote.
            let b256 = r.normalized(layer, 256).unwrap();
            assert!(b256 <= b1 + 1e-9);
            assert!(b256 >= r.asymptote - 0.02, "{layer}: {b256}");
            assert!(b256 < 0.45, "{layer}: {b256}");
        }
        assert!(r.normalized("DLRM-1", 1024).is_none());
        assert!(r.to_string().contains("asymptote"));
    }

    #[test]
    fn impossible_batch_ceiling_is_rejected() {
        let suite = ExperimentSuite::new().with_fig7_max_batch(0);
        assert!(matches!(
            suite.fig7_batch(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }
}
