//! The §V area-overhead and energy-efficiency comparison.

use super::Fig5Result;
use rasa_power::AreaModel;
use rasa_systolic::SystolicConfig;
use std::fmt;

/// One row of the area/energy table: a RASA-Data design with its best
/// control scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEnergyRow {
    /// Design name.
    pub design: String,
    /// Absolute array area (mm²).
    pub area_mm2: f64,
    /// Area overhead relative to the baseline array (0.031 = +3.1 %).
    pub area_overhead: f64,
    /// Average energy-efficiency improvement over the baseline across the
    /// Table I layers (>1 means less energy for the same work).
    pub energy_efficiency: f64,
}

/// The §V area and energy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEnergyResult {
    /// Baseline array area (mm²).
    pub baseline_area_mm2: f64,
    /// Baseline share of the Skylake GT2 4C die.
    pub baseline_die_fraction: f64,
    /// One row per RASA-Data design.
    pub rows: Vec<AreaEnergyRow>,
}

const DESIGNS: [&str; 3] = ["RASA-DB-WLS", "RASA-DM-WLBP", "RASA-DMDB-WLS"];

pub(super) fn from_fig5(fig5: &Fig5Result) -> AreaEnergyResult {
    let area_model = AreaModel::new();
    let baseline_cfg = SystolicConfig::paper_baseline();
    let baseline_area = area_model.array_area_mm2(&baseline_cfg);

    let rows = DESIGNS
        .iter()
        .map(|&design| {
            // Average the per-layer energy-efficiency ratios computed from
            // the recorded power reports.
            let mut ratios = Vec::new();
            let mut area = baseline_area;
            for run in &fig5.runs {
                let Some(base) = run.baseline() else { continue };
                let Some(report) = run.reports.iter().find(|r| r.design == design) else {
                    continue;
                };
                area = report.power.area.total();
                ratios.push(report.power.energy_efficiency_vs(&base.power));
            }
            let energy_efficiency = if ratios.is_empty() {
                0.0
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            };
            AreaEnergyRow {
                design: design.to_string(),
                area_mm2: area,
                area_overhead: area / baseline_area - 1.0,
                energy_efficiency,
            }
        })
        .collect();

    AreaEnergyResult {
        baseline_area_mm2: baseline_area,
        baseline_die_fraction: area_model.fraction_of_skylake_die(&baseline_cfg),
        rows,
    }
}

impl AreaEnergyResult {
    /// The row for a design, if present.
    #[must_use]
    pub fn row(&self, design: &str) -> Option<&AreaEnergyRow> {
        self.rows.iter().find(|r| r.design == design)
    }
}

impl fmt::Display for AreaEnergyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Area and energy efficiency (vs. baseline array)")?;
        writeln!(
            f,
            "  baseline array: {:.3} mm² ({:.2}% of a Skylake GT2 4C die)",
            self.baseline_area_mm2,
            self.baseline_die_fraction * 100.0
        )?;
        writeln!(
            f,
            "{:>16}{:>12}{:>14}{:>18}",
            "design", "area mm²", "area overhead", "energy efficiency"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>16}{:>12.3}{:>13.1}%{:>17.2}x",
                row.design,
                row.area_mm2,
                row.area_overhead * 100.0,
                row.energy_efficiency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ExperimentSuite;

    #[test]
    fn area_and_energy_match_the_papers_scale() {
        let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
        let fig5 = suite.fig5_runtime().unwrap();
        let table = suite.area_energy_from(&fig5);

        // Baseline: ≈0.8 mm², ≈0.7 % of the die.
        assert!(table.baseline_area_mm2 > 0.7 && table.baseline_area_mm2 < 0.95);
        assert!(table.baseline_die_fraction > 0.005 && table.baseline_die_fraction < 0.009);

        let db = table.row("RASA-DB-WLS").unwrap();
        let dm = table.row("RASA-DM-WLBP").unwrap();
        let dmdb = table.row("RASA-DMDB-WLS").unwrap();

        // Paper: +3.1 %, +2.6 %, +5.5 % area; 4.38×, 2.19×, 4.59× energy
        // efficiency. Check the overheads tightly and the efficiencies as a
        // band with the right ordering.
        assert!((db.area_overhead - 0.031).abs() < 0.02, "{db:?}");
        assert!((dm.area_overhead - 0.026).abs() < 0.02, "{dm:?}");
        assert!((dmdb.area_overhead - 0.055).abs() < 0.025, "{dmdb:?}");

        assert!(db.energy_efficiency > 2.5, "{db:?}");
        assert!(dm.energy_efficiency > 1.5, "{dm:?}");
        assert!(
            dmdb.energy_efficiency >= db.energy_efficiency * 0.9,
            "{dmdb:?}"
        );
        assert!(db.energy_efficiency > dm.energy_efficiency);
        assert!(dmdb.energy_efficiency < 8.0);

        assert!(table.row("BASELINE").is_none());
        assert!(table.to_string().contains("energy efficiency"));
    }
}
