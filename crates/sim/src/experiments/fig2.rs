//! Fig. 2: PE utilization versus TM for several array sizes.

use rasa_systolic::{utilization_curve, UtilizationPoint};
use std::fmt;

/// The Fig. 2 sweep: for each square array dimension, the average PE
/// utilization of one serialized instruction as a function of TM.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// The TM values swept (the X axis).
    pub tm_values: Vec<usize>,
    /// One `(array dimension, curve)` pair per evaluated array size.
    pub curves: Vec<(usize, Vec<UtilizationPoint>)>,
}

/// The array dimensions the figure compares.
const ARRAY_DIMS: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// Runs the analytical sweep.
pub(super) fn run() -> Fig2Result {
    // TM from one tile-register's worth up to the very large values a
    // standalone accelerator could stream (log-spaced powers of two).
    let tm_values: Vec<usize> = (2..=14).map(|p| 1usize << p).collect();
    let curves = ARRAY_DIMS
        .iter()
        .map(|&dim| (dim, utilization_curve(dim, &tm_values)))
        .collect();
    Fig2Result { tm_values, curves }
}

impl Fig2Result {
    /// The utilization for a given array dimension and TM, if present.
    #[must_use]
    pub fn utilization(&self, array_dim: usize, tm: usize) -> Option<f64> {
        self.curves
            .iter()
            .find(|(dim, _)| *dim == array_dim)
            .and_then(|(_, curve)| curve.iter().find(|p| p.tm == tm))
            .map(|p| p.utilization)
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — PE utilization vs TM (rows: SA dimension)")?;
        write!(f, "{:>8}", "SA\\TM")?;
        for tm in &self.tm_values {
            write!(f, "{tm:>8}")?;
        }
        writeln!(f)?;
        for (dim, curve) in &self.curves {
            write!(f, "{:>5}x{:<2}", dim, dim)?;
            for p in curve {
                write!(f, "{:>7.1}%", p.utilization * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_rises_with_tm_and_falls_with_array_size() {
        let r = run();
        assert_eq!(r.curves.len(), ARRAY_DIMS.len());
        // Monotone in TM for every array size.
        for (_, curve) in &r.curves {
            for pair in curve.windows(2) {
                assert!(pair[0].utilization < pair[1].utilization);
            }
        }
        // At fixed TM, a larger array is less utilized.
        let tm = 64;
        let small = r.utilization(8, tm).unwrap();
        let large = r.utilization(128, tm).unwrap();
        assert!(small > large);
        // The paper's motivating point: with TM limited to 16 by the tile
        // registers, even a 16x16 array stays around a quarter utilized.
        assert!(r.utilization(16, 16).unwrap() < 0.26);
        // With a huge TM (standalone accelerator) utilization approaches 1.
        assert!(r.utilization(16, 16384).unwrap() > 0.99);
        assert!(r.utilization(7, 16).is_none());
        assert!(r.to_string().contains("SA"));
    }
}
