//! Fig. 1: the 2×2 weight-stationary toy example.

use crate::SimError;
use rasa_numeric::{Bf16, Matrix};
use rasa_systolic::{ControlScheme, FunctionalArray, PeVariant, SystolicConfig};
use std::fmt;

/// The Fig. 1 walkthrough: a 2×2 WS systolic array processing a 2×2 GEMM,
/// with the per-cycle PE utilization the figure annotates (0 %, 0 %, 25 %,
/// 75 %, 75 %, 25 %, 0 %) and the 28.6 % average.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Active-PE fraction for every cycle of the operation.
    pub per_cycle_utilization: Vec<f64>,
    /// Average utilization over the whole operation.
    pub average_utilization: f64,
    /// Total latency in cycles (Eq. 1 for TM = TN = TK = 2).
    pub total_latency: u64,
    /// The functional result of the toy GEMM (C = A × B), proving the
    /// walkthrough actually computes.
    pub output: Vec<f32>,
}

/// Runs the toy example on the functional array.
pub(super) fn run() -> Result<Fig1Result, SimError> {
    let cfg = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4)?;
    let mut array = FunctionalArray::new(cfg);
    // The A/B matrices of Fig. 1 are symbolic; use small integers so the
    // output is easy to eyeball in the printed table.
    let a = Matrix::from_fn(2, 2, |i, j| Bf16::from_f32((i * 2 + j) as f32 + 1.0));
    let b = Matrix::from_fn(2, 2, |i, j| Bf16::from_f32((i * 2 + j) as f32 + 5.0));
    let c = Matrix::zeros(2, 2);
    let (out, activity) = array.matmul(&a, &b, &c)?;
    let num_pes = activity.num_pes() as f64;
    Ok(Fig1Result {
        per_cycle_utilization: activity
            .per_cycle()
            .iter()
            .map(|&active| active as f64 / num_pes)
            .collect(),
        average_utilization: activity.average_utilization(),
        total_latency: activity.cycles(),
        output: out.as_slice().to_vec(),
    })
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 1 — 2x2 WS systolic array, TM=TN=TK=2 (latency {} cycles)",
            self.total_latency
        )?;
        write!(f, "  per-cycle utilization:")?;
        for u in &self.per_cycle_utilization {
            write!(f, " {:>4.0}%", u * 100.0)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  overall utilization: {:.1}% (paper: 28.6%)",
            self.average_utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_walkthrough() {
        let r = run().unwrap();
        assert_eq!(r.total_latency, 7);
        assert!((r.average_utilization - 8.0 / 28.0).abs() < 1e-9);
        let expected = [0.0, 0.0, 0.25, 0.75, 0.75, 0.25, 0.0];
        assert_eq!(r.per_cycle_utilization.len(), expected.len());
        for (got, want) in r.per_cycle_utilization.iter().zip(expected) {
            assert!((got - want).abs() < 1e-9);
        }
        // C = A×B for A=[[1,2],[3,4]], B=[[5,6],[7,8]].
        assert_eq!(r.output, vec![19.0, 22.0, 43.0, 50.0]);
        let text = r.to_string();
        assert!(text.contains("28.6%"));
        assert!(text.contains("latency 7"));
    }
}
