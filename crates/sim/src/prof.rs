//! Scoped-timer and counter registry for the simulate-and-serve hot path.
//!
//! The registry is a fixed set of [`Stage`]s, each backed by a pair of
//! relaxed atomics (call count, accumulated nanoseconds). Instrumented
//! sites call [`time`] and hold the returned guard across the measured
//! region; the guard records on drop. Profiling is **disabled by
//! default** and the disabled path costs exactly one relaxed atomic load
//! per site — no clock read, no allocation — so the instrumentation can
//! stay in the hot paths permanently.
//!
//! The stages cover the end-to-end request pipeline: trace generation and
//! core simulation (the cell itself), JSON serialization, wire-frame
//! encode/decode, cell-cache probes, and the readiness transport's
//! poll-wait and socket-work phases. Bench binaries enable the
//! registry (`rasa_bench::prof` re-exports it and adds a counting global
//! allocator), run their workload, and emit a `prof` section into the
//! perf document via [`snapshot`] — so a BENCH document *attributes*
//! where the time went rather than asserting it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// One instrumented pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lowering a workload to a tiled instruction trace.
    TraceGen,
    /// Running a trace through the core model (any transport).
    Simulate,
    /// Rendering a JSON payload to text.
    JsonSerialize,
    /// Encoding a wire frame (header + payload bytes).
    FrameEncode,
    /// Decoding a wire frame from a stream.
    FrameDecode,
    /// Probing a cell cache (runner memoization or router result cache).
    CacheProbe,
    /// Blocking in the readiness poller (epoll_wait or the portable
    /// fallback's tick) waiting for sockets to become ready.
    NetPoll,
    /// Non-blocking socket work in the event loop: accepting, reading
    /// bursts into the frame decoders, flushing write buffers.
    NetIo,
}

/// Every stage, in display order.
pub const STAGES: [Stage; 8] = [
    Stage::TraceGen,
    Stage::Simulate,
    Stage::JsonSerialize,
    Stage::FrameEncode,
    Stage::FrameDecode,
    Stage::CacheProbe,
    Stage::NetPoll,
    Stage::NetIo,
];

impl Stage {
    /// Stable snake_case name, used as the JSON member name in perf
    /// documents.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stage::TraceGen => "trace_gen",
            Stage::Simulate => "simulate",
            Stage::JsonSerialize => "json_serialize",
            Stage::FrameEncode => "frame_encode",
            Stage::FrameDecode => "frame_decode",
            Stage::CacheProbe => "cache_probe",
            Stage::NetPoll => "net_poll",
            Stage::NetIo => "net_io",
        }
    }

    const fn index(self) -> usize {
        match self {
            Stage::TraceGen => 0,
            Stage::Simulate => 1,
            Stage::JsonSerialize => 2,
            Stage::FrameEncode => 3,
            Stage::FrameDecode => 4,
            Stage::CacheProbe => 5,
            Stage::NetPoll => 6,
            Stage::NetIo => 7,
        }
    }
}

struct Slot {
    count: AtomicU64,
    nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    count: AtomicU64::new(0),
    nanos: AtomicU64::new(0),
};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SLOTS: [Slot; STAGES.len()] = [EMPTY_SLOT; STAGES.len()];

/// Turns the registry on or off (off by default). Counters are *not*
/// reset — call [`reset`] to start a fresh measurement window.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether instrumented sites are currently recording.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every stage's counters.
pub fn reset() {
    for slot in &SLOTS {
        slot.count.store(0, Ordering::Relaxed);
        slot.nanos.store(0, Ordering::Relaxed);
    }
}

/// Starts timing `stage`; the returned guard records (count += 1,
/// nanos += elapsed) when dropped. When the registry is disabled this is
/// a no-op guard and no clock is read.
pub fn time(stage: Stage) -> ScopedTimer {
    ScopedTimer {
        armed: is_enabled().then(|| (stage, Instant::now())),
    }
}

/// Records one occurrence of `stage` with an externally measured
/// duration of zero — a pure event counter.
pub fn count(stage: Stage) {
    if is_enabled() {
        SLOTS[stage.index()].count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A drop guard recording a scoped duration into its stage. Obtained
/// from [`time`].
#[must_use = "the timer records on drop; binding it to _ measures nothing"]
pub struct ScopedTimer {
    armed: Option<(Stage, Instant)>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((stage, start)) = self.armed.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let slot = &SLOTS[stage.index()];
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

/// A point-in-time reading of one stage's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// The stage the counters belong to.
    pub stage: Stage,
    /// Recorded occurrences.
    pub count: u64,
    /// Accumulated duration in nanoseconds.
    pub nanos: u64,
}

impl StageSnapshot {
    /// Accumulated duration in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Reads every stage's counters, in [`STAGES`] order.
#[must_use]
pub fn snapshot() -> Vec<StageSnapshot> {
    STAGES
        .iter()
        .map(|&stage| {
            let slot = &SLOTS[stage.index()];
            StageSnapshot {
                stage,
                count: slot.count.load(Ordering::Relaxed),
                nanos: slot.nanos.load(Ordering::Relaxed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so the tests share one lock step:
    // a single test exercises the full lifecycle to avoid cross-test
    // interference under the parallel test runner.
    #[test]
    fn disabled_by_default_then_records_when_enabled() {
        assert!(!is_enabled());
        {
            let _t = time(Stage::Simulate);
        }
        count(Stage::CacheProbe);
        assert!(
            snapshot().iter().all(|s| s.count == 0 && s.nanos == 0),
            "disabled registry must not record"
        );

        set_enabled(true);
        reset();
        {
            let _t = time(Stage::Simulate);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        count(Stage::CacheProbe);
        let snap = snapshot();
        set_enabled(false);

        let simulate = snap.iter().find(|s| s.stage == Stage::Simulate).unwrap();
        assert_eq!(simulate.count, 1);
        assert!(simulate.nanos > 0);
        assert!(simulate.seconds() > 0.0);
        let probe = snap.iter().find(|s| s.stage == Stage::CacheProbe).unwrap();
        assert_eq!((probe.count, probe.nanos), (1, 0));
        assert_eq!(STAGES.len(), snap.len());
        assert_eq!(Stage::TraceGen.name(), "trace_gen");

        reset();
        assert!(snapshot().iter().all(|s| s.count == 0 && s.nanos == 0));
    }
}
