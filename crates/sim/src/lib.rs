//! # rasa-sim — end-to-end simulation facade and experiment runners
//!
//! This crate ties the whole reproduction stack together:
//!
//! 1. a workload (a Table I layer or an arbitrary GEMM) is lowered to a
//!    tiled `rasa_*` instruction trace by `rasa-trace`;
//! 2. the trace runs on the out-of-order core of `rasa-cpu`, which drives
//!    the `rasa-systolic` matrix engine configured for one **design point**
//!    (the baseline or one of the seven RASA designs of the evaluation);
//! 3. the resulting cycle counts and engine activity feed the `rasa-power`
//!    area/energy model;
//! 4. the [`ExperimentSuite`] repeats this over the workload × design matrix
//!    to regenerate every figure and table of the paper's evaluation
//!    (Fig. 1, Fig. 2, Fig. 5, Fig. 6, Fig. 7 and the area/energy numbers).
//!
//! ## Example
//!
//! ```
//! use rasa_sim::{DesignPoint, Simulator};
//! use rasa_numeric::GemmShape;
//!
//! # fn main() -> Result<(), rasa_sim::SimError> {
//! let gemm = GemmShape::new(128, 128, 128);
//! let base = Simulator::new(DesignPoint::baseline())?.run_gemm(gemm)?;
//! let rasa = Simulator::new(DesignPoint::rasa_dmdb_wls())?.run_gemm(gemm)?;
//! assert!(rasa.core_cycles < base.core_cycles);
//! assert!(rasa.normalized_runtime_vs(&base) < 1.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cache;
mod designs;
mod error;
mod experiments;
pub mod json;
mod key;
pub mod net;
pub mod prof;
mod report;
mod runner;
pub mod search;
pub mod serve;
mod simulator;

pub use cache::{InsertOutcome, LruCache};
pub use designs::DesignPoint;
pub use error::SimError;
pub use experiments::{
    AreaEnergyResult, AreaEnergyRow, BlockingAblationResult, BlockingAblationRow,
    CpuAblationResult, CpuAblationRow, ExperimentSuite, ExperimentSuiteBuilder, Fig1Result,
    Fig2Result, Fig5Result, Fig5Row, Fig6Result, Fig6Row, Fig7Result, Fig7Row,
};
pub use json::{FromJson, JsonError, JsonValue, ToJson};
pub use key::CellKey;
pub use net::{NetClient, NetError, Router, ShardServer, WireRequest, WireResponse};
pub use report::{PipelineStats, SimReport, SimSummary, WorkloadRun};
pub use runner::{
    CacheStats, ExperimentRunner, ExperimentRunnerBuilder, ExperimentSpec, SimJob,
    DEFAULT_CACHE_CAPACITY,
};
pub use search::{
    DesignSearch, EvaluatedDesign, Evolutionary, ExhaustiveGrid, Genotype, ParetoFrontier,
    RandomSampling, SearchOutcome, SearchSpace, SearchStrategy,
};
pub use serve::{
    AdmissionControl, GemmRequest, GemmResponse, GemmServer, LatencySummary, RequestLatency,
    ResponseHandle, ServeConfig, ServeStats, DEFAULT_QUEUE_CAPACITY,
};
pub use simulator::{Simulator, DEFAULT_SPEC_DEPTH};

/// Default target size (in instructions) of a streamed trace segment
/// (re-exported from `rasa-trace` for configuration plumbing).
pub use rasa_trace::DEFAULT_SEGMENT_SIZE;
