use crate::{GprReg, MemRef, RegSet, TileReg};
use std::fmt;

/// Coarse instruction classes used by the CPU model to pick a functional
/// unit and by statistics reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionKind {
    /// `rasa_tl` — tile load from memory into a tile register.
    TileLoad,
    /// `rasa_ts` — tile store from a tile register to memory.
    TileStore,
    /// `rasa_mm` — matrix multiply-accumulate on the systolic array.
    MatMul,
    /// Tile register zeroing (accumulator initialisation).
    TileZero,
    /// Scalar integer ALU operation (address/loop overhead).
    ScalarAlu,
    /// Scalar load (e.g. reloading a pointer from the stack).
    ScalarLoad,
    /// SIMD fused multiply-add (used by the AVX baseline traces).
    VectorFma,
    /// Conditional or unconditional branch (loop back-edges).
    Branch,
    /// No-operation / padding.
    Nop,
}

impl InstructionKind {
    /// Whether this kind executes on the matrix engine.
    #[must_use]
    pub const fn uses_matrix_engine(self) -> bool {
        matches!(self, InstructionKind::MatMul)
    }

    /// Whether this kind accesses memory.
    #[must_use]
    pub const fn is_memory(self) -> bool {
        matches!(
            self,
            InstructionKind::TileLoad | InstructionKind::TileStore | InstructionKind::ScalarLoad
        )
    }
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionKind::TileLoad => "rasa_tl",
            InstructionKind::TileStore => "rasa_ts",
            InstructionKind::MatMul => "rasa_mm",
            InstructionKind::TileZero => "rasa_tz",
            InstructionKind::ScalarAlu => "alu",
            InstructionKind::ScalarLoad => "load",
            InstructionKind::VectorFma => "vfma",
            InstructionKind::Branch => "branch",
            InstructionKind::Nop => "nop",
        };
        write!(f, "{s}")
    }
}

/// A decoded RASA-trace instruction.
///
/// Instructions carry their architectural operands so that the out-of-order
/// core can rename and schedule them; they do **not** carry data. Functional
/// behaviour (what the numbers are) lives in `rasa-numeric` and the
/// functional systolic array in `rasa-systolic`; the trace-driven simulation
/// only needs dependencies and kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instruction {
    /// `rasa_tl dst, [mem]` — load a tile register from memory.
    TileLoad {
        /// Destination tile register.
        dst: TileReg,
        /// Source memory reference.
        src: MemRef,
        /// Optional scalar register providing the base address.
        base: Option<GprReg>,
    },
    /// `rasa_ts [mem], src` — store a tile register to memory.
    TileStore {
        /// Destination memory reference.
        dst: MemRef,
        /// Source tile register.
        src: TileReg,
        /// Optional scalar register providing the base address.
        base: Option<GprReg>,
    },
    /// `rasa_mm acc, a, b` — `acc += a × b` on the systolic array.
    ///
    /// `a` holds a TM×TK BF16 tile, `b` a TK×TN BF16 tile (the stationary
    /// weights) and `acc` a TM×TN FP32 tile that is both read and written.
    MatMul {
        /// Accumulator tile register (read-modify-write).
        acc: TileReg,
        /// Input (moving) operand tile register.
        a: TileReg,
        /// Weight (stationary) operand tile register.
        b: TileReg,
    },
    /// `rasa_tz dst` — zero a tile register (fresh accumulator).
    TileZero {
        /// Destination tile register.
        dst: TileReg,
    },
    /// Scalar integer operation, e.g. pointer bump or loop counter update.
    ScalarAlu {
        /// Destination register.
        dst: GprReg,
        /// Source registers.
        srcs: RegSet<GprReg>,
    },
    /// Scalar load feeding a pointer register.
    ScalarLoad {
        /// Destination register.
        dst: GprReg,
        /// Address base register, when the address itself is register-carried.
        base: Option<GprReg>,
    },
    /// Vector fused multiply-add (AVX baseline traces).
    VectorFma {
        /// Destination/accumulator vector register index (flat space).
        dst: u8,
        /// First source vector register index.
        src1: u8,
        /// Second source vector register index.
        src2: u8,
    },
    /// Branch instruction; only its existence (front-end slot) matters.
    Branch {
        /// Whether the branch is taken (loop back-edge).
        taken: bool,
    },
    /// Padding no-op.
    Nop,
}

impl Instruction {
    /// The coarse kind of the instruction.
    #[must_use]
    pub const fn kind(&self) -> InstructionKind {
        match self {
            Instruction::TileLoad { .. } => InstructionKind::TileLoad,
            Instruction::TileStore { .. } => InstructionKind::TileStore,
            Instruction::MatMul { .. } => InstructionKind::MatMul,
            Instruction::TileZero { .. } => InstructionKind::TileZero,
            Instruction::ScalarAlu { .. } => InstructionKind::ScalarAlu,
            Instruction::ScalarLoad { .. } => InstructionKind::ScalarLoad,
            Instruction::VectorFma { .. } => InstructionKind::VectorFma,
            Instruction::Branch { .. } => InstructionKind::Branch,
            Instruction::Nop => InstructionKind::Nop,
        }
    }

    /// Tile registers read by the instruction.
    #[must_use]
    pub fn tile_reads(&self) -> RegSet<TileReg> {
        let mut set = RegSet::new();
        match self {
            Instruction::TileStore { src, .. } => set.push(*src),
            Instruction::MatMul { acc, a, b } => {
                set.push(*acc);
                set.push(*a);
                set.push(*b);
            }
            _ => {}
        }
        set
    }

    /// Tile registers written by the instruction.
    #[must_use]
    pub fn tile_writes(&self) -> RegSet<TileReg> {
        let mut set = RegSet::new();
        match self {
            Instruction::TileLoad { dst, .. } | Instruction::TileZero { dst } => set.push(*dst),
            Instruction::MatMul { acc, .. } => set.push(*acc),
            _ => {}
        }
        set
    }

    /// Scalar registers read by the instruction.
    #[must_use]
    pub fn gpr_reads(&self) -> RegSet<GprReg> {
        let mut set = RegSet::new();
        match self {
            Instruction::TileLoad { base, .. }
            | Instruction::TileStore { base, .. }
            | Instruction::ScalarLoad { base, .. } => {
                if let Some(b) = base {
                    set.push(*b);
                }
            }
            Instruction::ScalarAlu { srcs, .. } => {
                for s in srcs.iter() {
                    set.push(s);
                }
            }
            _ => {}
        }
        set
    }

    /// Scalar registers written by the instruction.
    #[must_use]
    pub fn gpr_writes(&self) -> RegSet<GprReg> {
        let mut set = RegSet::new();
        match self {
            Instruction::ScalarAlu { dst, .. } | Instruction::ScalarLoad { dst, .. } => {
                set.push(*dst)
            }
            _ => {}
        }
        set
    }

    /// Whether the instruction is a `rasa_mm`.
    #[must_use]
    pub const fn is_matmul(&self) -> bool {
        matches!(self, Instruction::MatMul { .. })
    }

    /// For a `rasa_mm`, the weight (stationary) operand register.
    #[must_use]
    pub const fn weight_operand(&self) -> Option<TileReg> {
        match self {
            Instruction::MatMul { b, .. } => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::TileLoad { dst, src, .. } => write!(f, "rasa_tl {dst}, {src}"),
            Instruction::TileStore { dst, src, .. } => write!(f, "rasa_ts {dst}, {src}"),
            Instruction::MatMul { acc, a, b } => write!(f, "rasa_mm {acc}, {a}, {b}"),
            Instruction::TileZero { dst } => write!(f, "rasa_tz {dst}"),
            Instruction::ScalarAlu { dst, .. } => write!(f, "alu {dst}"),
            Instruction::ScalarLoad { dst, .. } => write!(f, "load {dst}"),
            Instruction::VectorFma { dst, src1, src2 } => {
                write!(f, "vfma zmm{dst}, zmm{src1}, zmm{src2}")
            }
            Instruction::Branch { taken } => {
                write!(f, "branch{}", if *taken { " (taken)" } else { "" })
            }
            Instruction::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsaError;

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    #[test]
    fn matmul_operand_sets() -> Result<(), IsaError> {
        let mm = Instruction::MatMul {
            acc: treg(0),
            a: treg(6),
            b: treg(4),
        };
        assert!(mm.is_matmul());
        assert_eq!(mm.kind(), InstructionKind::MatMul);
        assert_eq!(mm.weight_operand(), Some(treg(4)));
        let reads: Vec<_> = mm.tile_reads().iter().collect();
        assert_eq!(reads, vec![treg(0), treg(6), treg(4)]);
        let writes: Vec<_> = mm.tile_writes().iter().collect();
        assert_eq!(writes, vec![treg(0)]);
        assert!(mm.gpr_reads().is_empty());
        assert!(mm.gpr_writes().is_empty());
        Ok(())
    }

    #[test]
    fn tile_load_store_operand_sets() {
        let base = GprReg::new(3).unwrap();
        let tl = Instruction::TileLoad {
            dst: treg(1),
            src: MemRef::tile(0x100, 64),
            base: Some(base),
        };
        assert_eq!(tl.kind(), InstructionKind::TileLoad);
        assert!(tl.kind().is_memory());
        assert_eq!(tl.tile_writes().iter().collect::<Vec<_>>(), vec![treg(1)]);
        assert!(tl.tile_reads().is_empty());
        assert_eq!(tl.gpr_reads().iter().collect::<Vec<_>>(), vec![base]);

        let ts = Instruction::TileStore {
            dst: MemRef::tile(0x200, 64),
            src: treg(1),
            base: None,
        };
        assert_eq!(ts.tile_reads().iter().collect::<Vec<_>>(), vec![treg(1)]);
        assert!(ts.tile_writes().is_empty());
    }

    #[test]
    fn scalar_alu_operand_sets() {
        let d = GprReg::new(0).unwrap();
        let s1 = GprReg::new(1).unwrap();
        let s2 = GprReg::new(2).unwrap();
        let alu = Instruction::ScalarAlu {
            dst: d,
            srcs: [s1, s2].into_iter().collect(),
        };
        assert_eq!(alu.gpr_reads().iter().collect::<Vec<_>>(), vec![s1, s2]);
        assert_eq!(alu.gpr_writes().iter().collect::<Vec<_>>(), vec![d]);
        assert!(alu.tile_reads().is_empty());
    }

    #[test]
    fn kind_properties() {
        assert!(InstructionKind::MatMul.uses_matrix_engine());
        assert!(!InstructionKind::TileLoad.uses_matrix_engine());
        assert!(InstructionKind::TileLoad.is_memory());
        assert!(InstructionKind::TileStore.is_memory());
        assert!(InstructionKind::ScalarLoad.is_memory());
        assert!(!InstructionKind::Branch.is_memory());
    }

    #[test]
    fn display_forms() {
        let mm = Instruction::MatMul {
            acc: treg(0),
            a: treg(6),
            b: treg(4),
        };
        assert_eq!(mm.to_string(), "rasa_mm treg0, treg6, treg4");
        assert_eq!(Instruction::Nop.to_string(), "nop");
        assert_eq!(InstructionKind::MatMul.to_string(), "rasa_mm");
    }
}
