use std::fmt;

/// A strided 2-D memory reference used by tile load/store instructions.
///
/// A tile in memory is a set of up to 16 row chunks of up to 64 bytes each,
/// separated by a fixed stride (the layout described in §II-B of the paper
/// for AMX `tileload`/`tilestore`). The simulator's memory is idealized, so
/// the reference only carries enough information to derive the number of
/// cache lines touched and to distinguish different tiles for dependence
/// purposes.
///
/// ```
/// use rasa_isa::MemRef;
/// let m = MemRef::new(0x10_000, 256, 16, 64);
/// assert_eq!(m.total_bytes(), 1024);
/// assert_eq!(m.cache_lines(64), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address of the first row.
    pub base: u64,
    /// Stride in bytes between consecutive rows.
    pub stride: u64,
    /// Number of rows transferred.
    pub rows: u16,
    /// Bytes transferred per row.
    pub row_bytes: u16,
}

impl MemRef {
    /// Creates a memory reference.
    #[must_use]
    pub const fn new(base: u64, stride: u64, rows: u16, row_bytes: u16) -> Self {
        MemRef {
            base,
            stride,
            rows,
            row_bytes,
        }
    }

    /// Convenience constructor for a dense AMX-style tile (16 rows of 64
    /// bytes) whose row stride equals `stride`.
    #[must_use]
    pub const fn tile(base: u64, stride: u64) -> Self {
        MemRef::new(base, stride, 16, 64)
    }

    /// Total number of bytes transferred.
    #[must_use]
    pub const fn total_bytes(&self) -> usize {
        self.rows as usize * self.row_bytes as usize
    }

    /// Number of distinct cache lines of `line_bytes` bytes touched by the
    /// transfer, assuming each row begins on a line boundary (the idealized
    /// memory model used throughout the workspace).
    #[must_use]
    pub fn cache_lines(&self, line_bytes: usize) -> usize {
        let per_row = (self.row_bytes as usize).div_ceil(line_bytes);
        per_row * self.rows as usize
    }

    /// Last byte address (exclusive) that the reference may touch.
    #[must_use]
    pub fn end_address(&self) -> u64 {
        if self.rows == 0 {
            return self.base;
        }
        self.base + (self.rows as u64 - 1) * self.stride + self.row_bytes as u64
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#x} +{}*{} rows of {}B]",
            self.base, self.stride, self.rows, self.row_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_constructor_is_1kb() {
        let m = MemRef::tile(0x1000, 64);
        assert_eq!(m.total_bytes(), 1024);
        assert_eq!(m.rows, 16);
        assert_eq!(m.row_bytes, 64);
    }

    #[test]
    fn cache_line_count() {
        let m = MemRef::new(0, 128, 16, 64);
        assert_eq!(m.cache_lines(64), 16);
        // 64-byte rows on 32-byte lines touch two lines per row.
        assert_eq!(m.cache_lines(32), 32);
        // Partial rows round up.
        let m = MemRef::new(0, 128, 4, 10);
        assert_eq!(m.cache_lines(64), 4);
    }

    #[test]
    fn end_address_accounts_for_stride() {
        let m = MemRef::new(0x1000, 256, 4, 64);
        assert_eq!(m.end_address(), 0x1000 + 3 * 256 + 64);
        let empty = MemRef::new(0x1000, 256, 0, 64);
        assert_eq!(empty.end_address(), 0x1000);
    }

    #[test]
    fn display_contains_base() {
        let m = MemRef::tile(0xdead00, 64);
        assert!(m.to_string().contains("0xdead00"));
    }
}
