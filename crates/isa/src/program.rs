use crate::{
    GprReg, Instruction, InstructionKind, IsaConfig, IsaError, MemRef, RegSet, TileReg,
    NUM_TILE_REGS,
};
use std::fmt;

/// Aggregate instruction-mix statistics for a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of `rasa_tl` instructions.
    pub tile_loads: usize,
    /// Number of `rasa_ts` instructions.
    pub tile_stores: usize,
    /// Number of `rasa_mm` instructions.
    pub matmuls: usize,
    /// Number of `rasa_tz` instructions.
    pub tile_zeros: usize,
    /// Number of scalar ALU / scalar load instructions.
    pub scalar_ops: usize,
    /// Number of vector FMA instructions (AVX baseline traces).
    pub vector_ops: usize,
    /// Number of branches.
    pub branches: usize,
    /// Number of no-ops.
    pub nops: usize,
}

impl ProgramStats {
    /// Total number of instructions counted.
    #[must_use]
    pub const fn total(&self) -> usize {
        self.tile_loads
            + self.tile_stores
            + self.matmuls
            + self.tile_zeros
            + self.scalar_ops
            + self.vector_ops
            + self.branches
            + self.nops
    }

    fn record(&mut self, kind: InstructionKind) {
        match kind {
            InstructionKind::TileLoad => self.tile_loads += 1,
            InstructionKind::TileStore => self.tile_stores += 1,
            InstructionKind::MatMul => self.matmuls += 1,
            InstructionKind::TileZero => self.tile_zeros += 1,
            InstructionKind::ScalarAlu | InstructionKind::ScalarLoad => self.scalar_ops += 1,
            InstructionKind::VectorFma => self.vector_ops += 1,
            InstructionKind::Branch => self.branches += 1,
            InstructionKind::Nop => self.nops += 1,
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} mm, {} tl, {} ts, {} tz, {} scalar, {} vector, {} branch, {} nop)",
            self.total(),
            self.matmuls,
            self.tile_loads,
            self.tile_stores,
            self.tile_zeros,
            self.scalar_ops,
            self.vector_ops,
            self.branches,
            self.nops
        )
    }
}

/// A bounded, validated chunk of a larger instruction stream.
///
/// Segments are produced by [`ProgramBuilder::finish_segment`]: the builder
/// validates the buffered instructions against the register state carried
/// over from earlier segments, so a sequence of segments is exactly as
/// well-formed as the equivalent one-shot [`Program`] — without any single
/// owner ever holding the whole trace. Each segment carries stable metadata
/// (its position in the stream, the global offset of its first instruction
/// and its instruction-mix statistics) so consumers can account for the
/// stream without reassembling it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSegment {
    isa: IsaConfig,
    index: usize,
    first_instruction: usize,
    instructions: Vec<Instruction>,
    stats: ProgramStats,
}

impl ProgramSegment {
    /// The ISA configuration the segment was built against.
    #[must_use]
    pub const fn isa(&self) -> &IsaConfig {
        &self.isa
    }

    /// Zero-based position of this segment in its stream.
    #[must_use]
    pub const fn index(&self) -> usize {
        self.index
    }

    /// Global (stream-wide) offset of this segment's first instruction.
    #[must_use]
    pub const fn first_instruction(&self) -> usize {
        self.first_instruction
    }

    /// The instructions of this segment, in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions in the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the segment holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Instruction-mix statistics of this segment alone.
    #[must_use]
    pub const fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Number of `rasa_mm` instructions in this segment.
    #[must_use]
    pub const fn count_matmuls(&self) -> usize {
        self.stats.matmuls
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }
}

impl<'a> IntoIterator for &'a ProgramSegment {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// An immutable, validated instruction trace.
///
/// A `Program` is what the trace generators in `rasa-trace` produce and what
/// the CPU model in `rasa-cpu` consumes. Construction goes through
/// [`ProgramBuilder`], which validates that every tile register read was
/// previously written (either by the program or declared as a live-in).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    isa: IsaConfig,
    instructions: Vec<Instruction>,
    stats: ProgramStats,
    name: String,
}

impl Program {
    /// The ISA configuration the program was built against.
    #[must_use]
    pub const fn isa(&self) -> &IsaConfig {
        &self.isa
    }

    /// The instructions, in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Instruction-mix statistics.
    #[must_use]
    pub const fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Number of `rasa_mm` instructions (the unit the paper reasons about).
    #[must_use]
    pub const fn count_matmuls(&self) -> usize {
        self.stats.matmuls
    }

    /// Human-readable program name (workload / kernel identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counts, among consecutive pairs of `rasa_mm` instructions, how many
    /// reuse the same weight (B) tile register with no intervening write to
    /// it. This is the upper bound on RASA-WLBP bypass opportunities in the
    /// trace and is useful for sanity-checking generated kernels.
    #[must_use]
    pub fn weight_reuse_pairs(&self) -> usize {
        let mut reuse = 0;
        let mut last_weight: Option<TileReg> = None;
        let mut dirty = [false; NUM_TILE_REGS];
        for inst in &self.instructions {
            for w in inst.tile_writes().iter() {
                dirty[w.index()] = true;
            }
            if let Instruction::MatMul { b, .. } = inst {
                if last_weight == Some(*b) && !dirty[b.index()] {
                    reuse += 1;
                }
                dirty[b.index()] = false;
                last_weight = Some(*b);
            }
        }
        reuse
    }

    /// Concatenates two programs built against the same ISA configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] when the ISA configurations
    /// differ.
    pub fn concat(mut self, other: &Program) -> Result<Program, IsaError> {
        if self.isa != other.isa {
            return Err(IsaError::InvalidProgram {
                index: 0,
                reason: "cannot concatenate programs with different isa configurations".to_string(),
            });
        }
        self.instructions.extend_from_slice(&other.instructions);
        let mut stats = ProgramStats::default();
        for inst in &self.instructions {
            stats.record(inst.kind());
        }
        self.stats = stats;
        self.name = format!("{}+{}", self.name, other.name);
        Ok(self)
    }

    /// Reassembles a contiguous run of stream segments into one `Program`
    /// (the inverse of segment-wise emission, used by parity tests that
    /// prove a streamed trace equals its materialized counterpart).
    ///
    /// The segments must come from one stream, in order: identical ISA
    /// configurations, consecutive indices and instruction offsets that tile
    /// the stream without gaps. Each segment was already validated by its
    /// producing builder (against the register state carried across
    /// segments), so no re-validation happens here.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] when the segments disagree on
    /// the ISA or are not contiguous.
    pub fn from_segments(
        segments: impl IntoIterator<Item = ProgramSegment>,
        name: impl Into<String>,
    ) -> Result<Program, IsaError> {
        let mut segments = segments.into_iter();
        let Some(first) = segments.next() else {
            return Err(IsaError::InvalidProgram {
                index: 0,
                reason: "cannot reassemble a program from zero segments".to_string(),
            });
        };
        let isa = first.isa;
        let mut stats = first.stats;
        let mut instructions = first.instructions;
        let mut next_offset = first.first_instruction + instructions.len();
        for (next_index, segment) in (first.index + 1..).zip(segments) {
            if segment.isa != isa {
                return Err(IsaError::InvalidProgram {
                    index: segment.first_instruction,
                    reason: "cannot reassemble segments with different isa configurations"
                        .to_string(),
                });
            }
            if segment.index != next_index || segment.first_instruction != next_offset {
                return Err(IsaError::InvalidProgram {
                    index: segment.first_instruction,
                    reason: format!(
                        "segment {} at offset {} is not contiguous with the previous \
                         segment (expected index {next_index} at offset {next_offset})",
                        segment.index, segment.first_instruction
                    ),
                });
            }
            next_offset += segment.instructions.len();
            for inst in &segment.instructions {
                stats.record(inst.kind());
            }
            instructions.extend(segment.instructions);
        }
        Ok(Program {
            isa,
            instructions,
            stats,
            name: name.into(),
        })
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// Builder for [`Program`]s with convenience emitters for each instruction.
///
/// The builder tracks which tile registers have been written so that
/// [`ProgramBuilder::finish`] can reject programs that read undefined
/// registers — a common bug class in hand-written kernel generators.
///
/// For streaming producers the builder doubles as a **segmenter**:
/// [`ProgramBuilder::finish_segment`] drains and validates the buffered
/// instructions as one [`ProgramSegment`], carrying the written-register
/// state (and the global instruction offset) forward so later segments may
/// read registers defined by earlier ones — exactly as a single validated
/// [`Program`] would allow.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    isa: IsaConfig,
    instructions: Vec<Instruction>,
    live_in: [bool; NUM_TILE_REGS],
    name: String,
    /// Segments emitted so far via [`ProgramBuilder::finish_segment`].
    segments_emitted: usize,
    /// Instructions already flushed into segments (the global offset of the
    /// first buffered instruction).
    flushed_instructions: usize,
}

/// Validates `instructions` against the carried written-register state,
/// updating it in place, and returns their instruction-mix statistics.
/// `base_index` offsets the reported error indices so streaming errors point
/// at the global stream position.
fn validate_instructions(
    isa: &IsaConfig,
    written: &mut [bool; NUM_TILE_REGS],
    instructions: &[Instruction],
    base_index: usize,
) -> Result<ProgramStats, IsaError> {
    let mut stats = ProgramStats::default();
    for (offset, inst) in instructions.iter().enumerate() {
        let index = base_index + offset;
        for r in inst.tile_reads().iter().chain(inst.tile_writes().iter()) {
            if r.index() >= isa.num_tile_regs() {
                return Err(IsaError::InvalidProgram {
                    index,
                    reason: format!(
                        "{r} exceeds the configured register count {}",
                        isa.num_tile_regs()
                    ),
                });
            }
        }
        for r in inst.tile_reads().iter() {
            if !written[r.index()] {
                return Err(IsaError::InvalidProgram {
                    index,
                    reason: format!("{inst} reads {r} before any write"),
                });
            }
        }
        for w in inst.tile_writes().iter() {
            written[w.index()] = true;
        }
        stats.record(inst.kind());
    }
    Ok(stats)
}

impl ProgramBuilder {
    /// Creates a builder for the given ISA configuration.
    #[must_use]
    pub fn new(isa: IsaConfig) -> Self {
        ProgramBuilder {
            isa,
            instructions: Vec::new(),
            live_in: [false; NUM_TILE_REGS],
            name: "unnamed".to_string(),
            segments_emitted: 0,
            flushed_instructions: 0,
        }
    }

    /// Sets the program name used in reports.
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Declares `reg` as live on entry (defined before the program starts),
    /// suppressing the undefined-read validation for it.
    pub fn declare_live_in(&mut self, reg: TileReg) -> &mut Self {
        self.live_in[reg.index()] = true;
        self
    }

    /// Appends an arbitrary instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// Emits `rasa_tl dst, [src]`.
    pub fn tile_load(&mut self, dst: TileReg, src: MemRef) -> &mut Self {
        self.push(Instruction::TileLoad {
            dst,
            src,
            base: None,
        })
    }

    /// Emits `rasa_tl dst, [base + src]` with a register-carried base.
    pub fn tile_load_indexed(&mut self, dst: TileReg, src: MemRef, base: GprReg) -> &mut Self {
        self.push(Instruction::TileLoad {
            dst,
            src,
            base: Some(base),
        })
    }

    /// Emits `rasa_ts [dst], src`.
    pub fn tile_store(&mut self, dst: MemRef, src: TileReg) -> &mut Self {
        self.push(Instruction::TileStore {
            dst,
            src,
            base: None,
        })
    }

    /// Emits `rasa_mm acc, a, b`.
    pub fn matmul(&mut self, acc: TileReg, a: TileReg, b: TileReg) -> &mut Self {
        self.push(Instruction::MatMul { acc, a, b })
    }

    /// Emits `rasa_tz dst`.
    pub fn tile_zero(&mut self, dst: TileReg) -> &mut Self {
        self.push(Instruction::TileZero { dst })
    }

    /// Emits a scalar ALU instruction.
    pub fn scalar_alu(&mut self, dst: GprReg, srcs: &[GprReg]) -> &mut Self {
        self.push(Instruction::ScalarAlu {
            dst,
            srcs: srcs.iter().copied().collect::<RegSet<GprReg>>(),
        })
    }

    /// Emits a branch (loop back-edge when `taken`).
    pub fn branch(&mut self, taken: bool) -> &mut Self {
        self.push(Instruction::Branch { taken })
    }

    /// Emits a vector FMA (AVX baseline).
    pub fn vector_fma(&mut self, dst: u8, src1: u8, src2: u8) -> &mut Self {
        self.push(Instruction::VectorFma { dst, src1, src2 })
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether no instructions have been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Drains the buffered instructions into a validated [`ProgramSegment`],
    /// carrying the written-register state forward so later segments (or a
    /// final [`finish`](Self::finish)) may read registers defined here.
    ///
    /// Segment metadata (index and global instruction offset) advances
    /// monotonically across calls. Flushing an empty buffer produces an
    /// empty segment, which is valid but rarely useful.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] under the same rules as
    /// [`finish`](Self::finish); error indices are global stream positions.
    pub fn finish_segment(&mut self) -> Result<ProgramSegment, IsaError> {
        let instructions = std::mem::take(&mut self.instructions);
        let first_instruction = self.flushed_instructions;
        let stats = validate_instructions(
            &self.isa,
            &mut self.live_in,
            &instructions,
            first_instruction,
        )?;
        let index = self.segments_emitted;
        self.segments_emitted += 1;
        self.flushed_instructions += instructions.len();
        Ok(ProgramSegment {
            isa: self.isa,
            index,
            first_instruction,
            instructions,
            stats,
        })
    }

    /// Validates the emitted instructions and produces a [`Program`].
    ///
    /// On a builder that already flushed segments, this finishes only the
    /// remaining (unflushed) tail — register reads resolved by earlier
    /// segments still validate, because the written-register state carries
    /// across [`finish_segment`](Self::finish_segment) calls.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] if any instruction reads a tile
    /// register that has not been written earlier in the program (and was
    /// not declared live-in), or if a tile register index exceeds the ISA's
    /// register count.
    pub fn finish(self) -> Result<Program, IsaError> {
        let mut written = self.live_in;
        let stats = validate_instructions(
            &self.isa,
            &mut written,
            &self.instructions,
            self.flushed_instructions,
        )?;
        Ok(Program {
            isa: self.isa,
            instructions: self.instructions,
            stats,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    /// Builds the exact instruction sequence of Algorithm 1 in the paper.
    fn algorithm_one() -> Program {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.set_name("algorithm-1");
        // Step 1: load C tiles.
        for i in 0..4u8 {
            b.tile_load(treg(i), MemRef::tile(0x1000 + u64::from(i) * 0x400, 64));
        }
        // Step 2: compute partial sums.
        b.tile_load(treg(4), MemRef::tile(0x8000, 64)); // BTile0
        b.tile_load(treg(6), MemRef::tile(0x9000, 64)); // ATile0
        b.matmul(treg(0), treg(6), treg(4));
        b.tile_load(treg(7), MemRef::tile(0x9400, 64)); // ATile1
        b.matmul(treg(1), treg(7), treg(4));
        b.tile_load(treg(5), MemRef::tile(0x8400, 64)); // BTile1
        b.matmul(treg(2), treg(6), treg(5));
        b.matmul(treg(3), treg(7), treg(5));
        // Step 3: store C tiles.
        for i in 0..4u8 {
            b.tile_store(MemRef::tile(0x1000 + u64::from(i) * 0x400, 64), treg(i));
        }
        b.finish().expect("algorithm 1 is a valid program")
    }

    #[test]
    fn algorithm_one_statistics() {
        let p = algorithm_one();
        assert_eq!(p.len(), 16);
        assert_eq!(p.count_matmuls(), 4);
        assert_eq!(p.stats().tile_loads, 8);
        assert_eq!(p.stats().tile_stores, 4);
        assert_eq!(p.stats().total(), 16);
        assert_eq!(p.name(), "algorithm-1");
    }

    #[test]
    fn algorithm_one_weight_reuse() {
        // Lines 9/11 reuse treg4 and lines 13/14 reuse treg5: two reuse pairs.
        let p = algorithm_one();
        assert_eq!(p.weight_reuse_pairs(), 2);
    }

    #[test]
    fn undefined_read_is_rejected() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.matmul(treg(0), treg(6), treg(4));
        let err = b.finish().unwrap_err();
        assert!(matches!(err, IsaError::InvalidProgram { index: 0, .. }));
    }

    #[test]
    fn live_in_suppresses_undefined_read() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.declare_live_in(treg(0));
        b.declare_live_in(treg(4));
        b.declare_live_in(treg(6));
        b.matmul(treg(0), treg(6), treg(4));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn register_out_of_configured_range_rejected() {
        // An ISA configured with only 4 tile registers rejects treg4+.
        let isa = IsaConfig::new(
            crate::TileGeometry::amx(),
            4,
            crate::DataType::Bf16,
            crate::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(5), MemRef::tile(0, 64));
        assert!(b.finish().is_err());
    }

    #[test]
    fn weight_reuse_interrupted_by_reload() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        // Reloading the weight register between the two matmuls kills reuse.
        b.tile_load(treg(4), MemRef::tile(0xc00, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        assert_eq!(p.weight_reuse_pairs(), 0);
    }

    #[test]
    fn concat_merges_and_recounts() {
        let p1 = algorithm_one();
        let p2 = algorithm_one();
        let joined = p1.concat(&p2).unwrap();
        assert_eq!(joined.len(), 32);
        assert_eq!(joined.count_matmuls(), 8);
        assert!(joined.name().contains('+'));
    }

    #[test]
    fn concat_rejects_mismatched_isa() {
        let p1 = algorithm_one();
        let isa2 = IsaConfig::new(
            crate::TileGeometry::new(8, 64).unwrap(),
            8,
            crate::DataType::Bf16,
            crate::DataType::Fp32,
        )
        .unwrap();
        let p2 = ProgramBuilder::new(isa2).finish().unwrap();
        assert!(p1.concat(&p2).is_err());
    }

    #[test]
    fn program_iteration() {
        let p = algorithm_one();
        assert_eq!(p.iter().count(), p.len());
        assert_eq!((&p).into_iter().count(), p.len());
        assert!(!p.is_empty());
    }

    #[test]
    fn segments_carry_register_state_and_reassemble() {
        // Split Algorithm 1 at an arbitrary point: the second segment reads
        // registers written in the first, which must validate through the
        // carried state.
        let whole = algorithm_one();
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        let mut segments = Vec::new();
        for (i, inst) in whole.iter().enumerate() {
            b.push(*inst);
            if i % 5 == 4 {
                segments.push(b.finish_segment().unwrap());
            }
        }
        segments.push(b.finish_segment().unwrap());
        assert_eq!(segments.len(), 4);
        // Metadata tiles the stream: indices and offsets are contiguous.
        let mut offset = 0;
        for (i, s) in segments.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(s.first_instruction(), offset);
            offset += s.len();
            assert_eq!(s.isa(), &isa);
            assert_eq!(s.iter().count(), s.len());
        }
        assert_eq!(offset, whole.len());
        // Per-segment stats sum to the whole program's stats.
        let mm: usize = segments.iter().map(ProgramSegment::count_matmuls).sum();
        assert_eq!(mm, whole.count_matmuls());
        // Reassembly reproduces the materialized program exactly.
        let rebuilt = Program::from_segments(segments, "algorithm-1").unwrap();
        assert_eq!(rebuilt, whole);
    }

    #[test]
    fn segment_validation_reports_global_indices() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.finish_segment().unwrap();
        // treg6 was never written in any segment: rejected with the global
        // stream index (2), not the segment-local one (0).
        b.matmul(treg(0), treg(6), treg(4));
        let err = b.finish_segment().unwrap_err();
        assert!(matches!(err, IsaError::InvalidProgram { index: 2, .. }));
    }

    #[test]
    fn finish_after_segments_validates_the_tail() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.finish_segment().unwrap();
        // The tail reads registers defined in the flushed segment.
        b.matmul(treg(0), treg(6), treg(4));
        let tail = b.finish().unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.count_matmuls(), 1);
    }

    #[test]
    fn empty_and_mismatched_segment_streams_are_rejected() {
        assert!(Program::from_segments(Vec::new(), "empty").is_err());
        // Two independent streams both start at index 0 / offset 0: not
        // contiguous.
        let isa = IsaConfig::amx_like();
        let mut a = ProgramBuilder::new(isa);
        a.tile_load(treg(0), MemRef::tile(0, 64));
        let s0 = a.finish_segment().unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(1), MemRef::tile(0x400, 64));
        let s1 = b.finish_segment().unwrap();
        assert!(Program::from_segments([s0.clone(), s1], "dup").is_err());
        // A lone segment (even mid-streamish) reassembles fine.
        let lone = Program::from_segments([s0], "lone").unwrap();
        assert_eq!(lone.len(), 1);
        assert!(!lone.is_empty());
    }

    #[test]
    fn empty_segment_is_valid() {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        let s = b.finish_segment().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.stats().total(), 0);
        // The next segment continues the numbering.
        b.tile_load(treg(0), MemRef::tile(0, 64));
        let s = b.finish_segment().unwrap();
        assert_eq!(s.index(), 1);
        assert_eq!(s.first_instruction(), 0);
        assert_eq!((&s).into_iter().count(), 1);
    }

    #[test]
    fn stats_display_mentions_matmuls() {
        let p = algorithm_one();
        let s = p.stats().to_string();
        assert!(s.contains("4 mm"));
        assert!(s.contains("16 instructions"));
    }
}
