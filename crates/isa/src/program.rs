use crate::{
    GprReg, Instruction, InstructionKind, IsaConfig, IsaError, MemRef, RegSet, TileReg,
    NUM_TILE_REGS,
};
use std::fmt;

/// Aggregate instruction-mix statistics for a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of `rasa_tl` instructions.
    pub tile_loads: usize,
    /// Number of `rasa_ts` instructions.
    pub tile_stores: usize,
    /// Number of `rasa_mm` instructions.
    pub matmuls: usize,
    /// Number of `rasa_tz` instructions.
    pub tile_zeros: usize,
    /// Number of scalar ALU / scalar load instructions.
    pub scalar_ops: usize,
    /// Number of vector FMA instructions (AVX baseline traces).
    pub vector_ops: usize,
    /// Number of branches.
    pub branches: usize,
    /// Number of no-ops.
    pub nops: usize,
}

impl ProgramStats {
    /// Total number of instructions counted.
    #[must_use]
    pub const fn total(&self) -> usize {
        self.tile_loads
            + self.tile_stores
            + self.matmuls
            + self.tile_zeros
            + self.scalar_ops
            + self.vector_ops
            + self.branches
            + self.nops
    }

    fn record(&mut self, kind: InstructionKind) {
        match kind {
            InstructionKind::TileLoad => self.tile_loads += 1,
            InstructionKind::TileStore => self.tile_stores += 1,
            InstructionKind::MatMul => self.matmuls += 1,
            InstructionKind::TileZero => self.tile_zeros += 1,
            InstructionKind::ScalarAlu | InstructionKind::ScalarLoad => self.scalar_ops += 1,
            InstructionKind::VectorFma => self.vector_ops += 1,
            InstructionKind::Branch => self.branches += 1,
            InstructionKind::Nop => self.nops += 1,
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} mm, {} tl, {} ts, {} tz, {} scalar, {} vector, {} branch, {} nop)",
            self.total(),
            self.matmuls,
            self.tile_loads,
            self.tile_stores,
            self.tile_zeros,
            self.scalar_ops,
            self.vector_ops,
            self.branches,
            self.nops
        )
    }
}

/// An immutable, validated instruction trace.
///
/// A `Program` is what the trace generators in `rasa-trace` produce and what
/// the CPU model in `rasa-cpu` consumes. Construction goes through
/// [`ProgramBuilder`], which validates that every tile register read was
/// previously written (either by the program or declared as a live-in).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    isa: IsaConfig,
    instructions: Vec<Instruction>,
    stats: ProgramStats,
    name: String,
}

impl Program {
    /// The ISA configuration the program was built against.
    #[must_use]
    pub const fn isa(&self) -> &IsaConfig {
        &self.isa
    }

    /// The instructions, in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Instruction-mix statistics.
    #[must_use]
    pub const fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Number of `rasa_mm` instructions (the unit the paper reasons about).
    #[must_use]
    pub const fn count_matmuls(&self) -> usize {
        self.stats.matmuls
    }

    /// Human-readable program name (workload / kernel identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counts, among consecutive pairs of `rasa_mm` instructions, how many
    /// reuse the same weight (B) tile register with no intervening write to
    /// it. This is the upper bound on RASA-WLBP bypass opportunities in the
    /// trace and is useful for sanity-checking generated kernels.
    #[must_use]
    pub fn weight_reuse_pairs(&self) -> usize {
        let mut reuse = 0;
        let mut last_weight: Option<TileReg> = None;
        let mut dirty = [false; NUM_TILE_REGS];
        for inst in &self.instructions {
            for w in inst.tile_writes().iter() {
                dirty[w.index()] = true;
            }
            if let Instruction::MatMul { b, .. } = inst {
                if last_weight == Some(*b) && !dirty[b.index()] {
                    reuse += 1;
                }
                dirty[b.index()] = false;
                last_weight = Some(*b);
            }
        }
        reuse
    }

    /// Concatenates two programs built against the same ISA configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] when the ISA configurations
    /// differ.
    pub fn concat(mut self, other: &Program) -> Result<Program, IsaError> {
        if self.isa != other.isa {
            return Err(IsaError::InvalidProgram {
                index: 0,
                reason: "cannot concatenate programs with different isa configurations".to_string(),
            });
        }
        self.instructions.extend_from_slice(&other.instructions);
        let mut stats = ProgramStats::default();
        for inst in &self.instructions {
            stats.record(inst.kind());
        }
        self.stats = stats;
        self.name = format!("{}+{}", self.name, other.name);
        Ok(self)
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// Builder for [`Program`]s with convenience emitters for each instruction.
///
/// The builder tracks which tile registers have been written so that
/// [`ProgramBuilder::finish`] can reject programs that read undefined
/// registers — a common bug class in hand-written kernel generators.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    isa: IsaConfig,
    instructions: Vec<Instruction>,
    live_in: [bool; NUM_TILE_REGS],
    name: String,
}

impl ProgramBuilder {
    /// Creates a builder for the given ISA configuration.
    #[must_use]
    pub fn new(isa: IsaConfig) -> Self {
        ProgramBuilder {
            isa,
            instructions: Vec::new(),
            live_in: [false; NUM_TILE_REGS],
            name: "unnamed".to_string(),
        }
    }

    /// Sets the program name used in reports.
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Declares `reg` as live on entry (defined before the program starts),
    /// suppressing the undefined-read validation for it.
    pub fn declare_live_in(&mut self, reg: TileReg) -> &mut Self {
        self.live_in[reg.index()] = true;
        self
    }

    /// Appends an arbitrary instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// Emits `rasa_tl dst, [src]`.
    pub fn tile_load(&mut self, dst: TileReg, src: MemRef) -> &mut Self {
        self.push(Instruction::TileLoad {
            dst,
            src,
            base: None,
        })
    }

    /// Emits `rasa_tl dst, [base + src]` with a register-carried base.
    pub fn tile_load_indexed(&mut self, dst: TileReg, src: MemRef, base: GprReg) -> &mut Self {
        self.push(Instruction::TileLoad {
            dst,
            src,
            base: Some(base),
        })
    }

    /// Emits `rasa_ts [dst], src`.
    pub fn tile_store(&mut self, dst: MemRef, src: TileReg) -> &mut Self {
        self.push(Instruction::TileStore {
            dst,
            src,
            base: None,
        })
    }

    /// Emits `rasa_mm acc, a, b`.
    pub fn matmul(&mut self, acc: TileReg, a: TileReg, b: TileReg) -> &mut Self {
        self.push(Instruction::MatMul { acc, a, b })
    }

    /// Emits `rasa_tz dst`.
    pub fn tile_zero(&mut self, dst: TileReg) -> &mut Self {
        self.push(Instruction::TileZero { dst })
    }

    /// Emits a scalar ALU instruction.
    pub fn scalar_alu(&mut self, dst: GprReg, srcs: &[GprReg]) -> &mut Self {
        self.push(Instruction::ScalarAlu {
            dst,
            srcs: srcs.iter().copied().collect::<RegSet<GprReg>>(),
        })
    }

    /// Emits a branch (loop back-edge when `taken`).
    pub fn branch(&mut self, taken: bool) -> &mut Self {
        self.push(Instruction::Branch { taken })
    }

    /// Emits a vector FMA (AVX baseline).
    pub fn vector_fma(&mut self, dst: u8, src1: u8, src2: u8) -> &mut Self {
        self.push(Instruction::VectorFma { dst, src1, src2 })
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether no instructions have been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Validates the emitted instructions and produces a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] if any instruction reads a tile
    /// register that has not been written earlier in the program (and was
    /// not declared live-in), or if a tile register index exceeds the ISA's
    /// register count.
    pub fn finish(self) -> Result<Program, IsaError> {
        let mut written = self.live_in;
        let mut stats = ProgramStats::default();
        for (index, inst) in self.instructions.iter().enumerate() {
            for r in inst.tile_reads().iter().chain(inst.tile_writes().iter()) {
                if r.index() >= self.isa.num_tile_regs() {
                    return Err(IsaError::InvalidProgram {
                        index,
                        reason: format!(
                            "{r} exceeds the configured register count {}",
                            self.isa.num_tile_regs()
                        ),
                    });
                }
            }
            for r in inst.tile_reads().iter() {
                if !written[r.index()] {
                    return Err(IsaError::InvalidProgram {
                        index,
                        reason: format!("{inst} reads {r} before any write"),
                    });
                }
            }
            for w in inst.tile_writes().iter() {
                written[w.index()] = true;
            }
            stats.record(inst.kind());
        }
        Ok(Program {
            isa: self.isa,
            instructions: self.instructions,
            stats,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    /// Builds the exact instruction sequence of Algorithm 1 in the paper.
    fn algorithm_one() -> Program {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.set_name("algorithm-1");
        // Step 1: load C tiles.
        for i in 0..4u8 {
            b.tile_load(treg(i), MemRef::tile(0x1000 + u64::from(i) * 0x400, 64));
        }
        // Step 2: compute partial sums.
        b.tile_load(treg(4), MemRef::tile(0x8000, 64)); // BTile0
        b.tile_load(treg(6), MemRef::tile(0x9000, 64)); // ATile0
        b.matmul(treg(0), treg(6), treg(4));
        b.tile_load(treg(7), MemRef::tile(0x9400, 64)); // ATile1
        b.matmul(treg(1), treg(7), treg(4));
        b.tile_load(treg(5), MemRef::tile(0x8400, 64)); // BTile1
        b.matmul(treg(2), treg(6), treg(5));
        b.matmul(treg(3), treg(7), treg(5));
        // Step 3: store C tiles.
        for i in 0..4u8 {
            b.tile_store(MemRef::tile(0x1000 + u64::from(i) * 0x400, 64), treg(i));
        }
        b.finish().expect("algorithm 1 is a valid program")
    }

    #[test]
    fn algorithm_one_statistics() {
        let p = algorithm_one();
        assert_eq!(p.len(), 16);
        assert_eq!(p.count_matmuls(), 4);
        assert_eq!(p.stats().tile_loads, 8);
        assert_eq!(p.stats().tile_stores, 4);
        assert_eq!(p.stats().total(), 16);
        assert_eq!(p.name(), "algorithm-1");
    }

    #[test]
    fn algorithm_one_weight_reuse() {
        // Lines 9/11 reuse treg4 and lines 13/14 reuse treg5: two reuse pairs.
        let p = algorithm_one();
        assert_eq!(p.weight_reuse_pairs(), 2);
    }

    #[test]
    fn undefined_read_is_rejected() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.matmul(treg(0), treg(6), treg(4));
        let err = b.finish().unwrap_err();
        assert!(matches!(err, IsaError::InvalidProgram { index: 0, .. }));
    }

    #[test]
    fn live_in_suppresses_undefined_read() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.declare_live_in(treg(0));
        b.declare_live_in(treg(4));
        b.declare_live_in(treg(6));
        b.matmul(treg(0), treg(6), treg(4));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn register_out_of_configured_range_rejected() {
        // An ISA configured with only 4 tile registers rejects treg4+.
        let isa = IsaConfig::new(
            crate::TileGeometry::amx(),
            4,
            crate::DataType::Bf16,
            crate::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(5), MemRef::tile(0, 64));
        assert!(b.finish().is_err());
    }

    #[test]
    fn weight_reuse_interrupted_by_reload() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        // Reloading the weight register between the two matmuls kills reuse.
        b.tile_load(treg(4), MemRef::tile(0xc00, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        assert_eq!(p.weight_reuse_pairs(), 0);
    }

    #[test]
    fn concat_merges_and_recounts() {
        let p1 = algorithm_one();
        let p2 = algorithm_one();
        let joined = p1.concat(&p2).unwrap();
        assert_eq!(joined.len(), 32);
        assert_eq!(joined.count_matmuls(), 8);
        assert!(joined.name().contains('+'));
    }

    #[test]
    fn concat_rejects_mismatched_isa() {
        let p1 = algorithm_one();
        let isa2 = IsaConfig::new(
            crate::TileGeometry::new(8, 64).unwrap(),
            8,
            crate::DataType::Bf16,
            crate::DataType::Fp32,
        )
        .unwrap();
        let p2 = ProgramBuilder::new(isa2).finish().unwrap();
        assert!(p1.concat(&p2).is_err());
    }

    #[test]
    fn program_iteration() {
        let p = algorithm_one();
        assert_eq!(p.iter().count(), p.len());
        assert_eq!((&p).into_iter().count(), p.len());
        assert!(!p.is_empty());
    }

    #[test]
    fn stats_display_mentions_matmuls() {
        let p = algorithm_one();
        let s = p.stats().to_string();
        assert!(s.contains("4 mm"));
        assert!(s.contains("16 instructions"));
    }
}
