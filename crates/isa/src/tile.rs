use crate::{DataType, IsaError, TileReg, NUM_TILE_REGS};

/// Physical geometry of one tile register: a number of rows, each holding a
/// fixed number of bytes.
///
/// The RASA paper (following Intel AMX) uses 16 rows of 64 bytes, i.e. 1 KB
/// per register. The geometry determines the maximum logical tile shapes:
/// with BF16 inputs a register holds a 16×32 operand tile and with FP32
/// outputs a 16×16 accumulator tile, which fixes TM = 16, TK = 32, TN = 16.
///
/// ```
/// use rasa_isa::{TileGeometry, DataType};
/// let g = TileGeometry::amx();
/// assert_eq!(g.size_bytes(), 1024);
/// assert_eq!(g.max_cols(DataType::Bf16), 32);
/// assert_eq!(g.max_cols(DataType::Fp32), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGeometry {
    rows: usize,
    row_bytes: usize,
}

impl TileGeometry {
    /// Creates a new geometry.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidGeometry`] if either dimension is zero or
    /// if a row cannot hold at least one FP32 element.
    pub fn new(rows: usize, row_bytes: usize) -> Result<Self, IsaError> {
        if rows == 0 {
            return Err(IsaError::InvalidGeometry {
                reason: "tile register must have at least one row".to_string(),
            });
        }
        if row_bytes < DataType::Fp32.size_bytes() {
            return Err(IsaError::InvalidGeometry {
                reason: format!("row of {row_bytes} bytes cannot hold one fp32 element"),
            });
        }
        Ok(TileGeometry { rows, row_bytes })
    }

    /// The AMX-style geometry used throughout the paper: 16 rows × 64 bytes.
    #[must_use]
    pub fn amx() -> Self {
        TileGeometry {
            rows: 16,
            row_bytes: 64,
        }
    }

    /// Number of rows per register.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes per row.
    #[must_use]
    pub const fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Total register capacity in bytes.
    #[must_use]
    pub const fn size_bytes(&self) -> usize {
        self.rows * self.row_bytes
    }

    /// Maximum number of columns of `dtype` elements a row can hold.
    #[must_use]
    pub const fn max_cols(&self, dtype: DataType) -> usize {
        dtype.elements_per_row(self.row_bytes)
    }

    /// Maximum logical tile shape for elements of `dtype`.
    #[must_use]
    pub fn max_shape(&self, dtype: DataType) -> TileShape {
        TileShape {
            rows: self.rows,
            cols: self.max_cols(dtype),
        }
    }

    /// Validates that `shape` (of `dtype` elements) fits in this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::TileShapeTooLarge`] when it does not fit.
    pub fn check_shape(&self, shape: TileShape, dtype: DataType) -> Result<(), IsaError> {
        let max = self.max_shape(dtype);
        if shape.rows > max.rows || shape.cols > max.cols {
            Err(IsaError::TileShapeTooLarge {
                rows: shape.rows,
                cols: shape.cols,
                max_rows: max.rows,
                max_cols: max.cols,
            })
        } else {
            Ok(())
        }
    }
}

impl Default for TileGeometry {
    fn default() -> Self {
        TileGeometry::amx()
    }
}

/// A logical (rows × cols) tile shape stored in a tile register.
///
/// `TileShape` does not carry a data type; pair it with a [`DataType`] and a
/// [`TileGeometry`] to check that it fits in a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TileShape {
    /// Number of rows of the logical tile.
    pub rows: usize,
    /// Number of columns of the logical tile.
    pub cols: usize,
}

impl TileShape {
    /// Creates a shape.
    #[must_use]
    pub const fn new(rows: usize, cols: usize) -> Self {
        TileShape { rows, cols }
    }

    /// Number of elements in the tile.
    #[must_use]
    pub const fn elements(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tile has no elements.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }
}

impl std::fmt::Display for TileShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Architectural tile register file state tracked at the ISA level.
///
/// The register file records, per register:
///
/// * whether the register has been written at all (so program validation can
///   reject reads of undefined registers), and
/// * the **dirty bit** introduced by the RASA-WLBP optimization: it is set
///   whenever the register is overwritten and cleared when the matrix engine
///   installs the register as its stationary weight plane. A subsequent
///   `rasa_mm` that names the same weight register with a clear dirty bit may
///   skip its Weight Load stage.
///
/// ```
/// use rasa_isa::{TileRegisterFile, TileReg};
/// let mut trf = TileRegisterFile::new(Default::default());
/// let b = TileReg::new(4)?;
/// trf.mark_written(b);
/// assert!(trf.is_dirty(b));
/// trf.install_as_weights(b);
/// assert!(!trf.is_dirty(b));
/// assert_eq!(trf.installed_weights(), Some(b));
/// # Ok::<(), rasa_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileRegisterFile {
    geometry: TileGeometry,
    written: [bool; NUM_TILE_REGS],
    dirty: [bool; NUM_TILE_REGS],
    installed_weights: Option<TileReg>,
}

impl TileRegisterFile {
    /// Creates a register file with all registers undefined and dirty.
    #[must_use]
    pub fn new(geometry: TileGeometry) -> Self {
        TileRegisterFile {
            geometry,
            written: [false; NUM_TILE_REGS],
            dirty: [true; NUM_TILE_REGS],
            installed_weights: None,
        }
    }

    /// The geometry shared by every register in the file.
    #[must_use]
    pub const fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }

    /// Records that `reg` has been written (by `rasa_tl` or as a `rasa_mm`
    /// destination), setting its dirty bit.
    pub fn mark_written(&mut self, reg: TileReg) {
        self.written[reg.index()] = true;
        self.dirty[reg.index()] = true;
        if self.installed_weights == Some(reg) {
            // Overwriting the register currently installed in the array
            // invalidates the installed weight plane.
            self.installed_weights = None;
        }
    }

    /// Whether `reg` has been written at least once.
    #[must_use]
    pub fn is_written(&self, reg: TileReg) -> bool {
        self.written[reg.index()]
    }

    /// Whether `reg`'s dirty bit is set (its contents differ from whatever
    /// the matrix engine last loaded as weights from it).
    #[must_use]
    pub fn is_dirty(&self, reg: TileReg) -> bool {
        self.dirty[reg.index()]
    }

    /// Installs `reg` as the matrix engine's stationary weight plane,
    /// clearing its dirty bit.
    pub fn install_as_weights(&mut self, reg: TileReg) {
        if let Some(prev) = self.installed_weights {
            if prev != reg {
                // The previously installed register's contents are no longer
                // in the array; mark it dirty so a later reuse reloads it.
                self.dirty[prev.index()] = true;
            }
        }
        self.installed_weights = Some(reg);
        self.dirty[reg.index()] = false;
    }

    /// The register currently installed as the array's weight plane, if any.
    #[must_use]
    pub fn installed_weights(&self) -> Option<TileReg> {
        self.installed_weights
    }

    /// Returns `true` when a `rasa_mm` naming `reg` as its weight operand may
    /// bypass the Weight Load stage (RASA-WLBP): the register is already the
    /// installed weight plane and has not been modified since.
    #[must_use]
    pub fn can_bypass_weight_load(&self, reg: TileReg) -> bool {
        self.installed_weights == Some(reg) && !self.is_dirty(reg)
    }

    /// Resets the file to its initial (undefined, dirty) state.
    pub fn reset(&mut self) {
        self.written = [false; NUM_TILE_REGS];
        self.dirty = [true; NUM_TILE_REGS];
        self.installed_weights = None;
    }
}

impl Default for TileRegisterFile {
    fn default() -> Self {
        TileRegisterFile::new(TileGeometry::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amx_geometry_matches_paper() {
        let g = TileGeometry::amx();
        assert_eq!(g.rows(), 16);
        assert_eq!(g.row_bytes(), 64);
        assert_eq!(g.size_bytes(), 1024);
        // TM=16, TK=32 (bf16 operand), TN=16 (fp32 accumulator)
        assert_eq!(g.max_shape(DataType::Bf16), TileShape::new(16, 32));
        assert_eq!(g.max_shape(DataType::Fp32), TileShape::new(16, 16));
    }

    #[test]
    fn zero_geometry_rejected() {
        assert!(TileGeometry::new(0, 64).is_err());
        assert!(TileGeometry::new(16, 2).is_err());
        assert!(TileGeometry::new(16, 4).is_ok());
    }

    #[test]
    fn shape_check() {
        let g = TileGeometry::amx();
        assert!(g
            .check_shape(TileShape::new(16, 32), DataType::Bf16)
            .is_ok());
        assert!(g.check_shape(TileShape::new(8, 8), DataType::Fp32).is_ok());
        let err = g
            .check_shape(TileShape::new(17, 32), DataType::Bf16)
            .unwrap_err();
        assert!(matches!(err, IsaError::TileShapeTooLarge { .. }));
        let err = g
            .check_shape(TileShape::new(16, 17), DataType::Fp32)
            .unwrap_err();
        assert!(matches!(err, IsaError::TileShapeTooLarge { .. }));
    }

    #[test]
    fn tile_shape_helpers() {
        let s = TileShape::new(16, 32);
        assert_eq!(s.elements(), 512);
        assert!(!s.is_empty());
        assert!(TileShape::new(0, 4).is_empty());
        assert_eq!(s.to_string(), "16x32");
    }

    #[test]
    fn dirty_bit_lifecycle() {
        let mut trf = TileRegisterFile::default();
        let b = TileReg::new(4).unwrap();
        // Initially undefined and dirty.
        assert!(!trf.is_written(b));
        assert!(trf.is_dirty(b));
        assert!(!trf.can_bypass_weight_load(b));

        trf.mark_written(b);
        assert!(trf.is_written(b));
        assert!(trf.is_dirty(b));

        trf.install_as_weights(b);
        assert!(!trf.is_dirty(b));
        assert!(trf.can_bypass_weight_load(b));

        // A write after installation sets the dirty bit and uninstalls.
        trf.mark_written(b);
        assert!(trf.is_dirty(b));
        assert!(!trf.can_bypass_weight_load(b));
        assert_eq!(trf.installed_weights(), None);
    }

    #[test]
    fn installing_new_weights_dirties_previous_plane() {
        let mut trf = TileRegisterFile::default();
        let b0 = TileReg::new(4).unwrap();
        let b1 = TileReg::new(5).unwrap();
        trf.mark_written(b0);
        trf.mark_written(b1);
        trf.install_as_weights(b0);
        assert!(trf.can_bypass_weight_load(b0));
        trf.install_as_weights(b1);
        assert!(trf.can_bypass_weight_load(b1));
        // b0 is no longer resident in the array.
        assert!(!trf.can_bypass_weight_load(b0));
        assert!(trf.is_dirty(b0));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut trf = TileRegisterFile::default();
        let r = TileReg::new(2).unwrap();
        trf.mark_written(r);
        trf.install_as_weights(r);
        trf.reset();
        assert!(!trf.is_written(r));
        assert!(trf.is_dirty(r));
        assert_eq!(trf.installed_weights(), None);
    }
}
