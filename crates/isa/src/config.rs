use crate::{DataType, IsaError, TileGeometry, TileShape, NUM_TILE_REGS};

/// Architecture-level configuration: tile register geometry and the data
/// types of the mixed-precision GEMM.
///
/// The configuration derives the tile dimensions used by the whole stack:
///
/// * `TM` — rows of the A / C tiles, equal to the register row count;
/// * `TK` — the reduction-dimension tile, equal to the number of input-type
///   elements per register row;
/// * `TN` — columns of the C tile, equal to the number of output-type
///   elements per register row.
///
/// For the AMX-like default (16 rows × 64 B, BF16 in / FP32 out) this gives
/// TM = 16, TK = 32, TN = 16 — the values the paper's 32×16 systolic array is
/// sized to match.
///
/// ```
/// use rasa_isa::IsaConfig;
/// let isa = IsaConfig::amx_like();
/// assert_eq!(isa.tm(), 16);
/// assert_eq!(isa.tk(), 32);
/// assert_eq!(isa.tn(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaConfig {
    geometry: TileGeometry,
    num_tile_regs: usize,
    input_dtype: DataType,
    output_dtype: DataType,
}

impl IsaConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidGeometry`] if `num_tile_regs` is zero or
    /// smaller than the four registers a 2×2 register-blocked micro-kernel
    /// needs for its accumulators.
    pub fn new(
        geometry: TileGeometry,
        num_tile_regs: usize,
        input_dtype: DataType,
        output_dtype: DataType,
    ) -> Result<Self, IsaError> {
        if num_tile_regs == 0 {
            return Err(IsaError::InvalidGeometry {
                reason: "at least one tile register is required".to_string(),
            });
        }
        Ok(IsaConfig {
            geometry,
            num_tile_regs,
            input_dtype,
            output_dtype,
        })
    }

    /// The AMX-like configuration used in the paper: eight 1 KB registers,
    /// BF16 inputs, FP32 accumulation.
    #[must_use]
    pub fn amx_like() -> Self {
        IsaConfig {
            geometry: TileGeometry::amx(),
            num_tile_regs: NUM_TILE_REGS,
            input_dtype: DataType::Bf16,
            output_dtype: DataType::Fp32,
        }
    }

    /// Tile register geometry.
    #[must_use]
    pub const fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }

    /// Number of architectural tile registers.
    #[must_use]
    pub const fn num_tile_regs(&self) -> usize {
        self.num_tile_regs
    }

    /// Input (A, B operand) element type.
    #[must_use]
    pub const fn input_dtype(&self) -> DataType {
        self.input_dtype
    }

    /// Output (C accumulator) element type.
    #[must_use]
    pub const fn output_dtype(&self) -> DataType {
        self.output_dtype
    }

    /// TM — maximum rows of an A / C tile (register row count).
    #[must_use]
    pub const fn tm(&self) -> usize {
        self.geometry.rows()
    }

    /// TK — maximum reduction-dimension extent of an A / B tile.
    #[must_use]
    pub const fn tk(&self) -> usize {
        self.input_dtype.elements_per_row(self.geometry.row_bytes())
    }

    /// TN — maximum columns of a C tile.
    #[must_use]
    pub const fn tn(&self) -> usize {
        self.output_dtype
            .elements_per_row(self.geometry.row_bytes())
    }

    /// Maximum shape of an A tile (TM × TK, input type).
    #[must_use]
    pub fn a_tile_shape(&self) -> TileShape {
        TileShape::new(self.tm(), self.tk())
    }

    /// Maximum shape of a B (weight) tile (TK × TN).
    ///
    /// The B tile is stored with TK rows packed two-per-physical-row for
    /// BF16 (as AMX does); logically it is TK × TN.
    #[must_use]
    pub fn b_tile_shape(&self) -> TileShape {
        TileShape::new(self.tk(), self.tn())
    }

    /// Maximum shape of a C tile (TM × TN, output type).
    #[must_use]
    pub fn c_tile_shape(&self) -> TileShape {
        TileShape::new(self.tm(), self.tn())
    }

    /// Bytes of architectural tile-register state.
    #[must_use]
    pub const fn total_tile_bytes(&self) -> usize {
        self.num_tile_regs * self.geometry.size_bytes()
    }
}

impl Default for IsaConfig {
    fn default() -> Self {
        IsaConfig::amx_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amx_like_tile_dims_match_paper() {
        let isa = IsaConfig::amx_like();
        assert_eq!(isa.tm(), 16);
        assert_eq!(isa.tk(), 32);
        assert_eq!(isa.tn(), 16);
        assert_eq!(isa.num_tile_regs(), 8);
        assert_eq!(isa.total_tile_bytes(), 8 * 1024);
        assert_eq!(isa.a_tile_shape(), TileShape::new(16, 32));
        assert_eq!(isa.b_tile_shape(), TileShape::new(32, 16));
        assert_eq!(isa.c_tile_shape(), TileShape::new(16, 16));
    }

    #[test]
    fn custom_geometry_changes_tile_dims() {
        // 32 rows of 128 bytes: TM=32, TK=64 (bf16), TN=32 (fp32).
        let g = TileGeometry::new(32, 128).unwrap();
        let isa = IsaConfig::new(g, 8, DataType::Bf16, DataType::Fp32).unwrap();
        assert_eq!(isa.tm(), 32);
        assert_eq!(isa.tk(), 64);
        assert_eq!(isa.tn(), 32);
    }

    #[test]
    fn zero_registers_rejected() {
        let g = TileGeometry::amx();
        assert!(IsaConfig::new(g, 0, DataType::Bf16, DataType::Fp32).is_err());
    }

    #[test]
    fn default_is_amx_like() {
        assert_eq!(IsaConfig::default(), IsaConfig::amx_like());
    }

    #[test]
    fn fp32_inputs_shrink_tk() {
        let isa = IsaConfig::new(TileGeometry::amx(), 8, DataType::Fp32, DataType::Fp32).unwrap();
        assert_eq!(isa.tk(), 16);
        assert_eq!(isa.tn(), 16);
    }
}
