use std::fmt;

/// Element data types supported by the RASA matrix engine.
///
/// The paper's processing elements perform mixed-precision multiply
/// accumulate: BF16 inputs (matrices A and B) and FP32 accumulation
/// (matrix C). The data type determines how many logical matrix elements a
/// 64-byte tile-register row can hold, which in turn fixes the tile
/// dimensions TM/TK/TN used throughout the timing model.
///
/// ```
/// use rasa_isa::DataType;
/// assert_eq!(DataType::Bf16.size_bytes(), 2);
/// assert_eq!(DataType::Fp32.size_bytes(), 4);
/// assert_eq!(DataType::Bf16.elements_per_row(64), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 16-bit brain floating point (1 sign, 8 exponent, 7 mantissa bits).
    Bf16,
    /// IEEE-754 single precision.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DataType::Bf16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Size of one element in bits.
    #[must_use]
    pub const fn size_bits(self) -> usize {
        self.size_bytes() * 8
    }

    /// Number of elements of this type that fit in a row of `row_bytes`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Does not panic; rows smaller than one element simply hold zero
    /// elements.
    #[must_use]
    pub const fn elements_per_row(self, row_bytes: usize) -> usize {
        row_bytes / self.size_bytes()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bf16 => write!(f, "bf16"),
            DataType::Fp32 => write!(f, "fp32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_formats() {
        assert_eq!(DataType::Bf16.size_bytes(), 2);
        assert_eq!(DataType::Bf16.size_bits(), 16);
        assert_eq!(DataType::Fp32.size_bytes(), 4);
        assert_eq!(DataType::Fp32.size_bits(), 32);
    }

    #[test]
    fn elements_per_amx_row() {
        // A 64-byte AMX-style row holds 32 BF16 or 16 FP32 elements.
        assert_eq!(DataType::Bf16.elements_per_row(64), 32);
        assert_eq!(DataType::Fp32.elements_per_row(64), 16);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::Bf16.to_string(), "bf16");
        assert_eq!(DataType::Fp32.to_string(), "fp32");
    }

    #[test]
    fn ordering_and_hash_derives_exist() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(DataType::Bf16);
        s.insert(DataType::Fp32);
        assert_eq!(s.len(), 2);
        assert!(DataType::Bf16 < DataType::Fp32);
    }
}
