use std::error::Error;
use std::fmt;

/// Errors produced while constructing ISA-level objects.
///
/// All fallible constructors and builders in this crate return `IsaError`;
/// it is `Send + Sync + 'static` so it composes with downstream error types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A tile register index was outside `0..NUM_TILE_REGS`.
    InvalidTileReg {
        /// The offending register index.
        index: u8,
    },
    /// A general-purpose register index was outside `0..NUM_GPR_REGS`.
    InvalidGprReg {
        /// The offending register index.
        index: u8,
    },
    /// A tile geometry parameter was zero or otherwise unusable.
    InvalidGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A program failed validation (e.g. an instruction reads a tile
    /// register that no prior instruction or program input defined).
    InvalidProgram {
        /// Index of the offending instruction within the program.
        index: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A logical tile shape does not fit in the tile register geometry.
    TileShapeTooLarge {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
        /// Maximum rows permitted by the geometry.
        max_rows: usize,
        /// Maximum columns permitted by the geometry for the data type.
        max_cols: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidTileReg { index } => {
                write!(f, "tile register index {index} is out of range")
            }
            IsaError::InvalidGprReg { index } => {
                write!(f, "general-purpose register index {index} is out of range")
            }
            IsaError::InvalidGeometry { reason } => {
                write!(f, "invalid tile geometry: {reason}")
            }
            IsaError::InvalidProgram { index, reason } => {
                write!(f, "invalid program at instruction {index}: {reason}")
            }
            IsaError::TileShapeTooLarge {
                rows,
                cols,
                max_rows,
                max_cols,
            } => write!(
                f,
                "tile shape {rows}x{cols} exceeds register capacity {max_rows}x{max_cols}"
            ),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IsaError::InvalidTileReg { index: 12 };
        let msg = e.to_string();
        assert!(msg.contains("12"));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let e = IsaError::TileShapeTooLarge {
            rows: 20,
            cols: 40,
            max_rows: 16,
            max_cols: 32,
        };
        assert!(e.to_string().contains("20x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<IsaError>();
    }
}
