//! # rasa-isa — tile-register ISA substrate for the RASA matrix engine
//!
//! This crate defines the architectural state and instruction set that the
//! rest of the workspace builds on. It mirrors the interface assumed by the
//! RASA paper (DAC 2021), which is itself modelled after Intel AMX:
//!
//! * eight architectural **tile registers** (`treg0`–`treg7`), each holding
//!   16 rows of 64 bytes (1 KB) — see [`TileGeometry`] and [`IsaConfig`];
//! * three matrix instructions: `rasa_tl` (tile load), `rasa_ts` (tile
//!   store) and `rasa_mm` (matrix multiply-accumulate) — see
//!   [`Instruction`];
//! * scalar/control overhead instructions so that generated traces look like
//!   real micro-kernels rather than bare matrix-op streams.
//!
//! The crate is intentionally free of any timing or micro-architectural
//! behaviour: it only describes *what* the instructions are and which
//! architectural registers they read and write. Timing lives in
//! `rasa-systolic` (matrix engine) and `rasa-cpu` (out-of-order core).
//!
//! ## Example
//!
//! ```
//! use rasa_isa::{IsaConfig, ProgramBuilder, TileReg, MemRef};
//!
//! # fn main() -> Result<(), rasa_isa::IsaError> {
//! let isa = IsaConfig::amx_like();
//! let mut b = ProgramBuilder::new(isa);
//! let c0 = TileReg::new(0)?;
//! let a0 = TileReg::new(6)?;
//! let b0 = TileReg::new(4)?;
//! b.tile_load(c0, MemRef::tile(0x1000, 64));
//! b.tile_load(a0, MemRef::tile(0x2000, 64));
//! b.tile_load(b0, MemRef::tile(0x3000, 64));
//! b.matmul(c0, a0, b0);
//! b.tile_store(MemRef::tile(0x1000, 64), c0);
//! let program = b.finish()?;
//! assert_eq!(program.len(), 5);
//! assert_eq!(program.count_matmuls(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod config;
mod dtype;
mod error;
mod instruction;
mod memref;
mod program;
mod regs;
mod tile;

pub use config::IsaConfig;
pub use dtype::DataType;
pub use error::IsaError;
pub use instruction::{Instruction, InstructionKind};
pub use memref::MemRef;
pub use program::{Program, ProgramBuilder, ProgramSegment, ProgramStats};
pub use regs::{GprReg, RegSet, TileReg, NUM_GPR_REGS, NUM_TILE_REGS};
pub use tile::{TileGeometry, TileRegisterFile, TileShape};
