use crate::IsaError;
use std::fmt;

/// Number of architectural tile registers (`treg0`–`treg7`), as in Intel AMX
/// and the RASA paper.
pub const NUM_TILE_REGS: usize = 8;

/// Number of modelled general-purpose (scalar) registers available to the
/// address-generation / loop-overhead instructions in generated traces.
pub const NUM_GPR_REGS: usize = 16;

/// An architectural tile register identifier (`treg0`–`treg7`).
///
/// ```
/// use rasa_isa::TileReg;
/// let t = TileReg::new(3)?;
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "treg3");
/// # Ok::<(), rasa_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileReg(u8);

impl TileReg {
    /// Creates a tile register identifier.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidTileReg`] if `index >= NUM_TILE_REGS`.
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if (index as usize) < NUM_TILE_REGS {
            Ok(TileReg(index))
        } else {
            Err(IsaError::InvalidTileReg { index })
        }
    }

    /// Register index in `0..NUM_TILE_REGS`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// All architectural tile registers, in index order.
    #[must_use]
    pub fn all() -> [TileReg; NUM_TILE_REGS] {
        [
            TileReg(0),
            TileReg(1),
            TileReg(2),
            TileReg(3),
            TileReg(4),
            TileReg(5),
            TileReg(6),
            TileReg(7),
        ]
    }
}

impl fmt::Display for TileReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "treg{}", self.0)
    }
}

impl TryFrom<u8> for TileReg {
    type Error = IsaError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        TileReg::new(value)
    }
}

/// A modelled general-purpose (scalar) register identifier.
///
/// These registers only exist so that generated traces carry realistic
/// address-generation and loop-control dependencies; the CPU model renames
/// them like any other register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GprReg(u8);

impl GprReg {
    /// Creates a general-purpose register identifier.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidGprReg`] if `index >= NUM_GPR_REGS`.
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if (index as usize) < NUM_GPR_REGS {
            Ok(GprReg(index))
        } else {
            Err(IsaError::InvalidGprReg { index })
        }
    }

    /// Register index in `0..NUM_GPR_REGS`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GprReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl TryFrom<u8> for GprReg {
    type Error = IsaError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        GprReg::new(value)
    }
}

/// A small fixed-capacity set of register operands.
///
/// Instructions have at most three tile operands and two scalar operands, so
/// a heap-free inline vector keeps the hot renaming path in the CPU model
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet<T: Copy> {
    items: [Option<T>; 4],
    len: u8,
}

impl<T: Copy> RegSet<T> {
    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        RegSet {
            items: [None, None, None, None],
            len: 0,
        }
    }

    /// Appends an operand.
    ///
    /// # Panics
    ///
    /// Panics if more than four operands are pushed; no modelled instruction
    /// has more than four operands of one class.
    pub fn push(&mut self, item: T) {
        assert!((self.len as usize) < self.items.len(), "RegSet overflow");
        self.items[self.len as usize] = Some(item);
        self.len += 1;
    }

    /// Number of operands in the set.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the operands in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.items
            .iter()
            .take(self.len as usize)
            .map(|x| x.expect("populated entries below len are always Some"))
    }
}

impl<T: Copy> FromIterator<T> for RegSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = RegSet::new();
        for item in iter {
            set.push(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_reg_bounds() {
        assert!(TileReg::new(0).is_ok());
        assert!(TileReg::new(7).is_ok());
        assert_eq!(TileReg::new(8), Err(IsaError::InvalidTileReg { index: 8 }));
    }

    #[test]
    fn gpr_reg_bounds() {
        assert!(GprReg::new(0).is_ok());
        assert!(GprReg::new(15).is_ok());
        assert_eq!(GprReg::new(16), Err(IsaError::InvalidGprReg { index: 16 }));
    }

    #[test]
    fn tile_reg_display_matches_paper_notation() {
        let t = TileReg::new(4).unwrap();
        assert_eq!(t.to_string(), "treg4");
    }

    #[test]
    fn all_tile_regs_are_distinct() {
        let regs = TileReg::all();
        assert_eq!(regs.len(), NUM_TILE_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn try_from_round_trips() {
        let t = TileReg::try_from(5u8).unwrap();
        assert_eq!(t.index(), 5);
        let g = GprReg::try_from(9u8).unwrap();
        assert_eq!(g.index(), 9);
    }

    #[test]
    fn regset_push_iter() {
        let mut s: RegSet<u8> = RegSet::new();
        assert!(s.is_empty());
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.len(), 3);
        let v: Vec<u8> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn regset_from_iterator() {
        let s: RegSet<u8> = [4u8, 5, 6].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "RegSet overflow")]
    fn regset_overflow_panics() {
        let mut s: RegSet<u8> = RegSet::new();
        for i in 0..5 {
            s.push(i);
        }
    }
}
