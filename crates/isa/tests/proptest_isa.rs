//! Property-based tests for the ISA substrate.

use proptest::prelude::*;
use rasa_isa::{
    DataType, Instruction, IsaConfig, MemRef, Program, ProgramBuilder, TileGeometry, TileReg,
    TileRegisterFile,
};

fn arb_tile_reg() -> impl Strategy<Value = TileReg> {
    (0u8..8).prop_map(|i| TileReg::new(i).expect("index < 8"))
}

/// A random but *valid* instruction stream: every tile register is loaded
/// before it is used, mimicking what a real kernel generator produces.
fn arb_valid_program(max_groups: usize) -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        (arb_tile_reg(), arb_tile_reg(), arb_tile_reg()),
        1..max_groups,
    )
    .prop_map(|groups| {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for (i, (acc, a, w)) in groups.into_iter().enumerate() {
            let base = 0x1000 * (i as u64 + 1);
            b.tile_load(acc, MemRef::tile(base, 64));
            b.tile_load(a, MemRef::tile(base + 0x400, 64));
            b.tile_load(w, MemRef::tile(base + 0x800, 64));
            b.matmul(acc, a, w);
            b.tile_store(MemRef::tile(base, 64), acc);
        }
        b.finish().expect("loads precede all uses")
    })
}

proptest! {
    /// Programs produced by the load-before-use pattern always validate, and
    /// their statistics add up.
    #[test]
    fn valid_programs_have_consistent_stats(p in arb_valid_program(20)) {
        prop_assert_eq!(p.stats().total(), p.len());
        prop_assert_eq!(p.stats().matmuls, p.count_matmuls());
        prop_assert_eq!(p.stats().tile_loads, 3 * p.count_matmuls());
        prop_assert_eq!(p.stats().tile_stores, p.count_matmuls());
    }

    /// Weight-reuse pairs are bounded by the number of consecutive matmul
    /// pairs in the program.
    #[test]
    fn weight_reuse_bounded(p in arb_valid_program(20)) {
        let mm = p.count_matmuls();
        prop_assert!(p.weight_reuse_pairs() <= mm.saturating_sub(1));
    }

    /// Reads/writes reported by an instruction never exceed three tile
    /// registers and are always within range.
    #[test]
    fn operand_sets_are_well_formed(acc in arb_tile_reg(), a in arb_tile_reg(), w in arb_tile_reg()) {
        let inst = Instruction::MatMul { acc, a, b: w };
        prop_assert_eq!(inst.tile_reads().len(), 3);
        prop_assert_eq!(inst.tile_writes().len(), 1);
        for r in inst.tile_reads().iter() {
            prop_assert!(r.index() < 8);
        }
    }

    /// The dirty-bit protocol: a register can only be bypass-eligible if it
    /// was installed and not rewritten since — independent of the order of
    /// random write/install events.
    #[test]
    fn dirty_bit_protocol(events in proptest::collection::vec((0u8..8, any::<bool>()), 0..64)) {
        let mut trf = TileRegisterFile::default();
        // Shadow model: for each register, was the last event an install?
        let mut last_install = [false; 8];
        for (idx, is_install) in events {
            let reg = TileReg::new(idx).unwrap();
            if is_install {
                trf.install_as_weights(reg);
                last_install = [false; 8];
                last_install[reg.index()] = true;
            } else {
                trf.mark_written(reg);
                last_install[reg.index()] = false;
            }
        }
        for idx in 0..8u8 {
            let reg = TileReg::new(idx).unwrap();
            prop_assert_eq!(trf.can_bypass_weight_load(reg), last_install[reg.index()]);
        }
    }

    /// Tile geometry arithmetic: capacity in elements equals rows × cols for
    /// both data types, and shapes at the boundary validate while any larger
    /// shape is rejected.
    #[test]
    fn geometry_capacity(rows in 1usize..64, row_bytes in 1usize..16) {
        let row_bytes = row_bytes * 4; // keep rows FP32-aligned
        let g = TileGeometry::new(rows, row_bytes).unwrap();
        for dtype in [DataType::Bf16, DataType::Fp32] {
            let shape = g.max_shape(dtype);
            prop_assert_eq!(shape.rows, rows);
            prop_assert_eq!(shape.cols * dtype.size_bytes(), row_bytes);
            prop_assert!(g.check_shape(shape, dtype).is_ok());
            let mut too_big = shape;
            too_big.cols += 1;
            prop_assert!(g.check_shape(too_big, dtype).is_err());
        }
    }
}
