//! Property-based tests of the matrix-engine scheduler: structural
//! invariants that must hold for arbitrary request sequences on every
//! design point.

use proptest::prelude::*;
use rasa_isa::TileReg;
use rasa_systolic::{
    base_latency, ControlScheme, MatrixEngine, MmRequest, PeVariant, SystolicConfig, TileDims,
};

fn arb_config() -> impl Strategy<Value = SystolicConfig> {
    prop_oneof![
        Just(SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Pipe).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Dm, ControlScheme::Pipe).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wlbp).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wlbp).unwrap()),
        Just(SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap()),
    ]
}

/// A random request stream: weight register index, whether the register was
/// rewritten just before the request, and how much later than the previous
/// request its operands become ready.
fn arb_stream() -> impl Strategy<Value = Vec<(u8, bool, u64)>> {
    proptest::collection::vec(((4u8..8), any::<bool>(), 0u64..40), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stage windows of one instruction are contiguous and in order; issue
    /// order is preserved (Feed First starts never decrease); the busy
    /// horizon equals the last drain end; and per-instruction occupancy
    /// never exceeds the serialized Eq. 1 latency.
    #[test]
    fn schedules_are_well_formed(config in arb_config(), stream in arb_stream()) {
        let mut engine = MatrixEngine::new(config);
        let tile = TileDims::full(&config);
        let serialized = base_latency(&config, tile);
        let mut ready = 0u64;
        let mut last_ff_start = 0u64;
        let mut last_dr_end = 0u64;
        let mut counted_bypasses = 0u64;

        for (reg, rewrite, delay) in stream {
            let weight = TileReg::new(reg).unwrap();
            if rewrite {
                engine.note_tile_write(weight);
            }
            ready += delay;
            let completion = engine
                .submit(MmRequest::ready_at(weight, tile, ready))
                .expect("full tiles always fit the paper configurations");
            let t = completion.timing;

            // Stage contiguity.
            prop_assert_eq!(t.fs.start, t.ff.end);
            prop_assert_eq!(t.dr.start, t.fs.end);
            if !t.wl.is_skipped() {
                prop_assert!(t.wl.start <= t.ff.start);
            }
            // Operand readiness respected.
            prop_assert!(t.ff.start >= ready);
            // In-order issue.
            prop_assert!(t.ff.start >= last_ff_start);
            last_ff_start = t.ff.start;
            last_dr_end = last_dr_end.max(t.dr.end);
            // Occupancy bounded by the serialized latency.
            prop_assert!(t.latency() <= serialized);
            // A bypass can only happen on a bypass-capable scheme.
            if t.weight_bypassed {
                prop_assert!(config.control().supports_weight_bypass());
                counted_bypasses += 1;
            }
            // Prefetches only exist under WLS.
            if t.weight_prefetched {
                prop_assert_eq!(config.control(), ControlScheme::Wls);
            }
            prop_assert_eq!(completion.complete_cycle, t.dr.end);
        }

        let stats = engine.stats();
        prop_assert_eq!(stats.weight_bypasses, counted_bypasses);
        prop_assert_eq!(engine.busy_horizon(), last_dr_end);
        prop_assert_eq!(
            stats.weight_bypasses + stats.weight_prefetches + stats.full_weight_loads,
            stats.matmuls
        );
    }

    /// More aggressive control schemes never produce a later busy horizon
    /// than less aggressive ones on the same PE variant and request stream.
    #[test]
    fn scheme_aggressiveness_is_monotone(stream in arb_stream(), dm in any::<bool>()) {
        let pe = if dm { PeVariant::Dmdb } else { PeVariant::Db };
        let schemes = [
            ControlScheme::Base,
            ControlScheme::Pipe,
            ControlScheme::Wlbp,
            ControlScheme::Wls,
        ];
        let mut horizons = Vec::new();
        for scheme in schemes {
            let config = SystolicConfig::paper(pe, scheme).unwrap();
            let tile = TileDims::full(&config);
            let mut engine = MatrixEngine::new(config);
            let mut ready = 0u64;
            for &(reg, rewrite, delay) in &stream {
                let weight = TileReg::new(reg).unwrap();
                if rewrite {
                    engine.note_tile_write(weight);
                }
                ready += delay;
                engine
                    .submit(MmRequest::ready_at(weight, tile, ready))
                    .expect("valid tile");
            }
            horizons.push(engine.busy_horizon());
        }
        for pair in horizons.windows(2) {
            prop_assert!(pair[0] >= pair[1], "horizons not monotone: {:?}", horizons);
        }
    }

    /// The engine's reported MAC count is exact regardless of tile clipping.
    #[test]
    fn mac_accounting_matches_tiles(
        tm in 1usize..16,
        tk in 1usize..32,
        tn in 1usize..16,
        count in 1usize..20,
    ) {
        let config = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp).unwrap();
        let mut engine = MatrixEngine::new(config);
        let tile = TileDims::new(tm, tk, tn);
        for _ in 0..count {
            engine
                .submit(MmRequest::ready_at(TileReg::new(4).unwrap(), tile, 0))
                .unwrap();
        }
        prop_assert_eq!(
            engine.stats().total_macs,
            (tm * tk * tn * count) as u64
        );
    }
}
