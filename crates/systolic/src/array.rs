use crate::{Pe, SystolicConfig, SystolicError};
use rasa_numeric::{Bf16, Matrix};

/// Per-cycle activity record of a functional-array execution.
///
/// The record lists, for every engine cycle of the operation (including the
/// Weight Load cycles, which perform no MACs), how many PEs performed useful
/// work. This is exactly the quantity the paper's Fig. 1 walkthrough counts
/// (8 active PE-cycles out of 28 for the 2×2 toy example) and the basis of
/// the Fig. 2 utilization curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayActivity {
    per_cycle_active_pes: Vec<usize>,
    num_pes: usize,
    total_macs: u64,
}

impl ArrayActivity {
    pub(crate) fn new(per_cycle_active_pes: Vec<usize>, num_pes: usize, total_macs: u64) -> Self {
        ArrayActivity {
            per_cycle_active_pes,
            num_pes,
            total_macs,
        }
    }

    /// Total number of cycles recorded.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.per_cycle_active_pes.len() as u64
    }

    /// Active PE count for every cycle, in order.
    #[must_use]
    pub fn per_cycle(&self) -> &[usize] {
        &self.per_cycle_active_pes
    }

    /// Sum of active PEs across all cycles.
    #[must_use]
    pub fn total_active_pe_cycles(&self) -> u64 {
        self.per_cycle_active_pes.iter().map(|&x| x as u64).sum()
    }

    /// Total multiply-accumulate operations performed.
    #[must_use]
    pub const fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Number of PEs in the array.
    #[must_use]
    pub const fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Average PE utilization: active PE-cycles divided by
    /// `cycles × num_pes`.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        if self.per_cycle_active_pes.is_empty() || self.num_pes == 0 {
            return 0.0;
        }
        self.total_active_pe_cycles() as f64 / (self.cycles() as f64 * self.num_pes as f64)
    }

    /// Concatenates another activity record after this one (e.g. Weight Load
    /// followed by the feed/drain phases).
    #[must_use]
    pub fn then(mut self, other: &ArrayActivity) -> ArrayActivity {
        self.per_cycle_active_pes
            .extend_from_slice(&other.per_cycle_active_pes);
        self.total_macs += other.total_macs;
        self
    }
}

/// A register-level functional model of the weight-stationary systolic
/// array.
///
/// The array owns a grid of [`Pe`]s and streams operands through them with
/// the skewed wavefronts described in §IV-A: weights enter from the north a
/// row per cycle (bottom row first), A operands enter from the west skewed
/// by row, C accumulator values enter from the north skewed by column,
/// partial sums flow south and the finished outputs are collected at the
/// bottom of the occupied rows.
///
/// The functional model executes one `rasa_mm` at a time; the inter-
/// instruction overlap of the RASA-Control schemes is a *timing* property
/// handled by [`crate::MatrixEngine`]. Its role is to prove the dataflow
/// correct (bit-exact against [`rasa_numeric::gemm_bf16_fp32`]) for every PE
/// variant and to produce the per-cycle utilization data of Fig. 1 / Fig. 2.
///
/// ```
/// use rasa_systolic::{FunctionalArray, SystolicConfig, PeVariant, ControlScheme};
/// use rasa_numeric::{Matrix, Bf16};
///
/// let cfg = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4)?;
/// let mut array = FunctionalArray::new(cfg);
/// let a = Matrix::from_fn(2, 2, |i, j| Bf16::from_f32((i * 2 + j) as f32));
/// let b = Matrix::from_fn(2, 2, |i, j| Bf16::from_f32((i * 2 + j + 1) as f32));
/// let c = Matrix::zeros(2, 2);
/// let (out, activity) = array.matmul(&a, &b, &c)?;
/// assert_eq!(out[(0, 0)], 3.0); // 0*1 + 1*3
/// // Fig. 1: 8 active PE-cycles over 7 cycles on 4 PEs = 28.6 %.
/// assert_eq!(activity.cycles(), 7);
/// assert_eq!(activity.total_active_pe_cycles(), 8);
/// # Ok::<(), rasa_systolic::SystolicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalArray {
    config: SystolicConfig,
    pes: Vec<Pe>,
    loaded_tk: usize,
    loaded_tn: usize,
    weights_loaded: bool,
    shadow_tk: usize,
    shadow_tn: usize,
    shadow_loaded: bool,
}

impl FunctionalArray {
    /// Creates an array with no weights loaded.
    #[must_use]
    pub fn new(config: SystolicConfig) -> Self {
        let pes = (0..config.num_pes())
            .map(|_| Pe::new(config.pe()))
            .collect();
        FunctionalArray {
            config,
            pes,
            loaded_tk: 0,
            loaded_tn: 0,
            weights_loaded: false,
            shadow_tk: 0,
            shadow_tn: 0,
            shadow_loaded: false,
        }
    }

    /// The array configuration.
    #[must_use]
    pub const fn config(&self) -> &SystolicConfig {
        &self.config
    }

    fn pe_index(&self, row: usize, col: usize) -> usize {
        row * self.config.cols() + col
    }

    /// Immutable access to the PE at `(row, col)` for inspection in tests.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates exceed the array dimensions.
    #[must_use]
    pub fn pe(&self, row: usize, col: usize) -> &Pe {
        assert!(row < self.config.rows() && col < self.config.cols());
        &self.pes[row * self.config.cols() + col]
    }

    fn validate_weight_operand(&self, b: &Matrix<Bf16>) -> Result<(usize, usize), SystolicError> {
        let tk = b.rows();
        let tn = b.cols();
        if tk == 0 || tn == 0 || tk > self.config.max_tk() || tn > self.config.max_tn() {
            return Err(SystolicError::TileTooLarge {
                tm: 0,
                tk,
                tn,
                max_tk: self.config.max_tk(),
                max_tn: self.config.max_tn(),
            });
        }
        Ok((tk, tn))
    }

    /// The per-PE weight lanes for physical row `row` derived from the B
    /// operand (lane `j` holds logical K index `row·mpp + j`).
    fn weight_row(&self, b: &Matrix<Bf16>, row: usize, tn: usize) -> Vec<[f32; 2]> {
        let mpp = self.config.pe().multipliers_per_pe();
        (0..tn)
            .map(|c| {
                let mut lanes = [0.0f32; 2];
                for (j, lane) in lanes.iter_mut().enumerate().take(mpp) {
                    let k = row * mpp + j;
                    *lane = b.get(k, c).map(Bf16::to_f32).unwrap_or(0.0);
                }
                lanes
            })
            .collect()
    }

    /// Loads the stationary weight tile into the active weight plane by
    /// shifting it down from the north edge one physical row per cycle
    /// (bottom row inserted first), returning the number of Weight Load
    /// cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::TileTooLarge`] when the operand exceeds the
    /// array capacity.
    pub fn load_weights(&mut self, b: &Matrix<Bf16>) -> Result<u64, SystolicError> {
        let (tk, tn) = self.validate_weight_operand(b)?;
        let rows = crate::timing::occupied_rows(&self.config, tk) as usize;
        // Shift-register model of the weight-load chain: one stage per
        // occupied physical row, new rows injected at the top, existing
        // contents moving south each cycle.
        let mut pipe: Vec<Option<Vec<[f32; 2]>>> = vec![None; rows];
        for cycle in 0..rows {
            for r in (1..rows).rev() {
                pipe[r] = pipe[r - 1].take();
            }
            // Bottom-most remaining row enters first so that after `rows`
            // shifts every row sits at its destination.
            pipe[0] = Some(self.weight_row(b, rows - 1 - cycle, tn));
        }
        for (r, stage) in pipe.into_iter().enumerate() {
            let row_weights = stage.expect("every stage is filled after rows cycles");
            for (c, lanes) in row_weights.into_iter().enumerate() {
                let idx = self.pe_index(r, c);
                self.pes[idx].set_weights(lanes);
            }
        }
        self.loaded_tk = tk;
        self.loaded_tn = tn;
        self.weights_loaded = true;
        Ok(rows as u64)
    }

    /// Prefetches a weight tile into the shadow buffers over the dedicated
    /// links of the double-buffered PE variants, returning the cycles the
    /// prefetch channel is busy.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::UnsupportedCombination`] when the PE variant
    /// has no shadow buffer and [`SystolicError::TileTooLarge`] when the
    /// operand exceeds the array capacity.
    pub fn load_shadow_weights(&mut self, b: &Matrix<Bf16>) -> Result<u64, SystolicError> {
        if !self.config.pe().has_double_buffering() {
            return Err(SystolicError::UnsupportedCombination {
                scheme: "WLS",
                variant: self.config.pe().label(),
                reason: "shadow weight load requires double-buffered PEs".to_string(),
            });
        }
        let (tk, tn) = self.validate_weight_operand(b)?;
        let rows = crate::timing::occupied_rows(&self.config, tk) as usize;
        for r in 0..rows {
            let row_weights = self.weight_row(b, r, tn);
            for (c, lanes) in row_weights.into_iter().enumerate() {
                let idx = self.pe_index(r, c);
                self.pes[idx].set_shadow(lanes)?;
            }
        }
        self.shadow_tk = tk;
        self.shadow_tn = tn;
        self.shadow_loaded = true;
        Ok(rows as u64)
    }

    /// Swaps the prefetched shadow weights into the active plane (a
    /// single-cycle control action performed at the Feed First boundary).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] when no shadow weights have
    /// been prefetched.
    pub fn swap_shadow(&mut self) -> Result<(), SystolicError> {
        if !self.shadow_loaded {
            return Err(SystolicError::InvalidConfig {
                reason: "shadow swap requested before any shadow prefetch".to_string(),
            });
        }
        let rows = crate::timing::occupied_rows(&self.config, self.shadow_tk) as usize;
        for r in 0..rows {
            for c in 0..self.shadow_tn {
                let idx = self.pe_index(r, c);
                self.pes[idx].swap_shadow()?;
            }
        }
        self.loaded_tk = self.shadow_tk;
        self.loaded_tn = self.shadow_tn;
        self.weights_loaded = true;
        self.shadow_loaded = false;
        Ok(())
    }

    /// Streams the A operand and the C accumulator tile through the array
    /// using the currently loaded weights and collects the updated
    /// accumulator tile (`c_out = c_in + a × b`).
    ///
    /// The returned [`ArrayActivity`] covers the Feed First / Feed Second /
    /// Drain cycles only; [`FunctionalArray::matmul`] prepends the Weight
    /// Load cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] when no weights are loaded
    /// and [`SystolicError::OperandShapeMismatch`] when the operand shapes
    /// disagree with the loaded weight tile.
    pub fn execute(
        &mut self,
        a: &Matrix<Bf16>,
        c_in: &Matrix<f32>,
    ) -> Result<(Matrix<f32>, ArrayActivity), SystolicError> {
        if !self.weights_loaded {
            return Err(SystolicError::InvalidConfig {
                reason: "execute called before any weight load".to_string(),
            });
        }
        let tm = a.rows();
        if a.cols() != self.loaded_tk || c_in.rows() != tm || c_in.cols() != self.loaded_tn {
            return Err(SystolicError::OperandShapeMismatch {
                detail: format!(
                    "a is {}x{}, c is {}x{}, loaded weights are {}x{}",
                    a.rows(),
                    a.cols(),
                    c_in.rows(),
                    c_in.cols(),
                    self.loaded_tk,
                    self.loaded_tn
                ),
            });
        }
        if tm == 0 {
            return Err(SystolicError::OperandShapeMismatch {
                detail: "a has zero rows".to_string(),
            });
        }

        let mpp = self.config.pe().multipliers_per_pe();
        let rows = crate::timing::occupied_rows(&self.config, self.loaded_tk) as usize;
        let cols = self.loaded_tn;
        let merge = usize::from(self.config.pe().needs_merge_adder_row());
        // Feed First + Feed Second + Drain duration from the timing model.
        let total_cycles = tm + (rows - 1) + cols + merge;

        let mut out = c_in.clone();
        let mut per_cycle = Vec::with_capacity(total_cycles);
        let mut total_macs = 0u64;

        for t in 0..total_cycles {
            // Gather every PE's inputs from the neighbours' registered state
            // of the previous cycle before any PE is updated.
            let mut inputs = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    let a_in = if c == 0 {
                        // West edge: row r receives A row m = t − r, lanes
                        // covering K indices r·mpp .. r·mpp+mpp.
                        let m = t as isize - r as isize;
                        if m >= 0 && (m as usize) < tm {
                            let m = m as usize;
                            let mut lanes = [0.0f32; 2];
                            for (j, lane) in lanes.iter_mut().enumerate().take(mpp) {
                                let k = r * mpp + j;
                                *lane = a.get(m, k).map(Bf16::to_f32).unwrap_or(0.0);
                            }
                            (lanes, true)
                        } else {
                            ([0.0; 2], false)
                        }
                    } else {
                        let west = self.pes[self.pe_index(r, c - 1)].state();
                        (west.a_out, west.a_valid)
                    };
                    let psum_in = if r == 0 {
                        // North edge: column c receives the C accumulator
                        // value for row m = t − c on lane 0.
                        let m = t as isize - c as isize;
                        if m >= 0 && (m as usize) < tm {
                            ([c_in[(m as usize, c)], 0.0], true)
                        } else {
                            ([0.0; 2], false)
                        }
                    } else {
                        let north = self.pes[self.pe_index(r - 1, c)].state();
                        (north.psum_out, north.psum_valid)
                    };
                    inputs.push((a_in, psum_in));
                }
            }

            let mut active = 0usize;
            for r in 0..rows {
                for c in 0..cols {
                    let idx = self.pe_index(r, c);
                    let (a_in, psum_in) = inputs[r * cols + c];
                    let macs = self.pes[idx].step(a_in, psum_in);
                    if macs > 0 {
                        active += 1;
                        total_macs += macs as u64;
                    }
                }
            }
            per_cycle.push(active);

            // Collect finished outputs at the bottom of the occupied rows:
            // output (m, c) leaves PE(rows−1, c) at the end of cycle
            // m + c + rows − 1 (one cycle later through the merge-adder row
            // for the double-multiplier variants, which only changes when
            // the value is architecturally visible, not its value).
            for c in 0..cols {
                let m = t as isize - c as isize - (rows as isize - 1);
                if m >= 0 && (m as usize) < tm {
                    let state = self.pes[self.pe_index(rows - 1, c)].state();
                    if state.psum_valid {
                        out[(m as usize, c)] = state.psum_out[0] + state.psum_out[1];
                    }
                }
            }
        }

        // Clear pipeline registers so back-to-back functional calls do not
        // leak stale wavefronts (weights stay resident, as in hardware).
        for pe in &mut self.pes {
            pe.clear_pipeline();
        }

        Ok((
            out,
            ArrayActivity::new(per_cycle, self.config.num_pes(), total_macs),
        ))
    }

    /// Convenience wrapper: loads `b` as the stationary weights, executes
    /// the feed/drain phases and returns the updated accumulator together
    /// with an activity record covering the *whole* operation (Weight Load
    /// cycles included, with zero active PEs — exactly the accounting of
    /// Fig. 1).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`FunctionalArray::load_weights`] and
    /// [`FunctionalArray::execute`].
    pub fn matmul(
        &mut self,
        a: &Matrix<Bf16>,
        b: &Matrix<Bf16>,
        c_in: &Matrix<f32>,
    ) -> Result<(Matrix<f32>, ArrayActivity), SystolicError> {
        let wl_cycles = self.load_weights(b)?;
        let (out, feed_activity) = self.execute(a, c_in)?;
        let wl_activity = ArrayActivity::new(vec![0; wl_cycles as usize], self.config.num_pes(), 0);
        Ok((out, wl_activity.then(&feed_activity)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlScheme, PeVariant};
    use rasa_numeric::{gemm_bf16_fp32, max_abs_diff};

    fn bf16_matrix(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |i, j| Bf16::from_f32(f(i, j)))
    }

    fn reference(a: &Matrix<Bf16>, b: &Matrix<Bf16>, c: &Matrix<f32>) -> Matrix<f32> {
        let mut out = c.clone();
        gemm_bf16_fp32(a, b, &mut out).unwrap();
        out
    }

    fn paper_config(pe: PeVariant) -> SystolicConfig {
        SystolicConfig::paper(pe, ControlScheme::Base).unwrap()
    }

    #[test]
    fn toy_2x2_matches_fig1() {
        let cfg = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4).unwrap();
        let mut array = FunctionalArray::new(cfg);
        let a = bf16_matrix(2, 2, |i, j| (i * 2 + j) as f32 + 1.0);
        let b = bf16_matrix(2, 2, |i, j| (i * 2 + j) as f32 + 5.0);
        let c = Matrix::zeros(2, 2);
        let (out, activity) = array.matmul(&a, &b, &c).unwrap();
        assert_eq!(max_abs_diff(&out, &reference(&a, &b, &c)), 0.0);
        // 2·TK + TM + TN − 1 = 7 cycles, 8 active PE-cycles, 28.6 % average.
        assert_eq!(activity.cycles(), 7);
        assert_eq!(activity.total_active_pe_cycles(), 8);
        assert_eq!(activity.total_macs(), 8);
        assert!((activity.average_utilization() - 8.0 / 28.0).abs() < 1e-9);
        // Per-cycle profile: WL, WL, then the diagonal wavefront.
        assert_eq!(activity.per_cycle(), &[0, 0, 1, 3, 3, 1, 0]);
    }

    #[test]
    fn full_tile_matches_reference_for_all_variants() {
        for pe in PeVariant::all() {
            let cfg = paper_config(pe);
            let mut array = FunctionalArray::new(cfg);
            let a = bf16_matrix(16, 32, |i, j| ((i * 31 + j * 7) % 11) as f32 - 5.0);
            let b = bf16_matrix(32, 16, |i, j| ((i * 13 + j * 3) % 9) as f32 - 4.0);
            let c = Matrix::from_fn(16, 16, |i, j| (i + j) as f32);
            let (out, activity) = array.matmul(&a, &b, &c).unwrap();
            assert_eq!(
                max_abs_diff(&out, &reference(&a, &b, &c)),
                0.0,
                "variant {pe}"
            );
            // Total MACs are independent of the PE variant.
            assert_eq!(activity.total_macs(), 16 * 32 * 16, "variant {pe}");
            // The recorded cycle count equals the analytic Eq. 1 latency.
            let expected = crate::base_latency(&cfg, crate::TileDims::new(16, 32, 16));
            assert_eq!(activity.cycles(), expected, "variant {pe}");
        }
    }

    #[test]
    fn partial_tiles_match_reference() {
        for pe in [PeVariant::Baseline, PeVariant::Dmdb] {
            let cfg = paper_config(pe);
            let mut array = FunctionalArray::new(cfg);
            let a = bf16_matrix(5, 17, |i, j| ((i + 2 * j) % 7) as f32 - 3.0);
            let b = bf16_matrix(17, 9, |i, j| ((3 * i + j) % 5) as f32 - 2.0);
            let c = Matrix::from_fn(5, 9, |i, j| (i * j) as f32 * 0.5);
            let (out, _) = array.matmul(&a, &b, &c).unwrap();
            assert_eq!(
                max_abs_diff(&out, &reference(&a, &b, &c)),
                0.0,
                "variant {pe}"
            );
        }
    }

    #[test]
    fn accumulation_across_k_tiles() {
        // Split a K=64 GEMM into two K=32 rasa_mm calls accumulating into C.
        let cfg = paper_config(PeVariant::Baseline);
        let mut array = FunctionalArray::new(cfg);
        let a_full = bf16_matrix(16, 64, |i, j| ((i * 5 + j) % 13) as f32 - 6.0);
        let b_full = bf16_matrix(64, 16, |i, j| ((i + j * 11) % 7) as f32 - 3.0);
        let golden = reference(&a_full, &b_full, &Matrix::zeros(16, 16));

        let a0 = Matrix::from_fn(16, 32, |i, j| a_full[(i, j)]);
        let a1 = Matrix::from_fn(16, 32, |i, j| a_full[(i, j + 32)]);
        let b0 = Matrix::from_fn(32, 16, |i, j| b_full[(i, j)]);
        let b1 = Matrix::from_fn(32, 16, |i, j| b_full[(i + 32, j)]);
        let (c_mid, _) = array.matmul(&a0, &b0, &Matrix::zeros(16, 16)).unwrap();
        let (c_out, _) = array.matmul(&a1, &b1, &c_mid).unwrap();
        assert_eq!(max_abs_diff(&c_out, &golden), 0.0);
    }

    #[test]
    fn weight_reuse_without_reload() {
        // Two A tiles against the same stationary B (the WLBP scenario).
        let cfg = paper_config(PeVariant::Baseline);
        let mut array = FunctionalArray::new(cfg);
        let b = bf16_matrix(32, 16, |i, j| ((i + j) % 5) as f32);
        let a0 = bf16_matrix(16, 32, |i, j| ((i * j) % 3) as f32);
        let a1 = bf16_matrix(16, 32, |i, j| ((i + 2 * j) % 4) as f32);
        array.load_weights(&b).unwrap();
        let (c0, _) = array.execute(&a0, &Matrix::zeros(16, 16)).unwrap();
        let (c1, _) = array.execute(&a1, &Matrix::zeros(16, 16)).unwrap();
        assert_eq!(
            max_abs_diff(&c0, &reference(&a0, &b, &Matrix::zeros(16, 16))),
            0.0
        );
        assert_eq!(
            max_abs_diff(&c1, &reference(&a1, &b, &Matrix::zeros(16, 16))),
            0.0
        );
    }

    #[test]
    fn shadow_prefetch_and_swap() {
        let cfg = SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap();
        let mut array = FunctionalArray::new(cfg);
        let b0 = bf16_matrix(32, 16, |i, j| ((i + j) % 5) as f32);
        let b1 = bf16_matrix(32, 16, |i, j| ((i * 2 + j) % 7) as f32);
        let a = bf16_matrix(16, 32, |i, j| ((i + j) % 3) as f32);
        array.load_weights(&b0).unwrap();
        array.load_shadow_weights(&b1).unwrap();
        let (c0, _) = array.execute(&a, &Matrix::zeros(16, 16)).unwrap();
        assert_eq!(
            max_abs_diff(&c0, &reference(&a, &b0, &Matrix::zeros(16, 16))),
            0.0
        );
        array.swap_shadow().unwrap();
        let (c1, _) = array.execute(&a, &Matrix::zeros(16, 16)).unwrap();
        assert_eq!(
            max_abs_diff(&c1, &reference(&a, &b1, &Matrix::zeros(16, 16))),
            0.0
        );
    }

    #[test]
    fn shadow_requires_double_buffering() {
        let mut array = FunctionalArray::new(paper_config(PeVariant::Baseline));
        let b = bf16_matrix(32, 16, |_, _| 1.0);
        assert!(array.load_shadow_weights(&b).is_err());
        assert!(array.swap_shadow().is_err());
    }

    #[test]
    fn execute_before_load_is_rejected() {
        let mut array = FunctionalArray::new(paper_config(PeVariant::Baseline));
        let a = bf16_matrix(16, 32, |_, _| 1.0);
        let c = Matrix::zeros(16, 16);
        assert!(array.execute(&a, &c).is_err());
    }

    #[test]
    fn oversized_operands_rejected() {
        let mut array = FunctionalArray::new(paper_config(PeVariant::Baseline));
        let b_too_deep = bf16_matrix(33, 16, |_, _| 1.0);
        assert!(array.load_weights(&b_too_deep).is_err());
        let b_too_wide = bf16_matrix(32, 17, |_, _| 1.0);
        assert!(array.load_weights(&b_too_wide).is_err());
    }

    #[test]
    fn mismatched_execute_operands_rejected() {
        let mut array = FunctionalArray::new(paper_config(PeVariant::Baseline));
        let b = bf16_matrix(32, 16, |_, _| 1.0);
        array.load_weights(&b).unwrap();
        let a_wrong = bf16_matrix(16, 16, |_, _| 1.0);
        assert!(array.execute(&a_wrong, &Matrix::zeros(16, 16)).is_err());
        let a = bf16_matrix(16, 32, |_, _| 1.0);
        assert!(array.execute(&a, &Matrix::zeros(16, 8)).is_err());
    }

    #[test]
    fn weight_load_cycle_counts() {
        let mut base = FunctionalArray::new(paper_config(PeVariant::Baseline));
        let b = bf16_matrix(32, 16, |_, _| 1.0);
        assert_eq!(base.load_weights(&b).unwrap(), 32);
        let mut dm = FunctionalArray::new(paper_config(PeVariant::Dm));
        assert_eq!(dm.load_weights(&b).unwrap(), 16);
    }

    #[test]
    fn tall_streaming_tile_matches_reference() {
        // TM larger than the register file's 16 rows is legal for the
        // functional model (it is simply a longer stream).
        let cfg = paper_config(PeVariant::Dm);
        let mut array = FunctionalArray::new(cfg);
        let a = bf16_matrix(40, 32, |i, j| ((i + j) % 6) as f32 - 3.0);
        let b = bf16_matrix(32, 16, |i, j| ((i * j) % 4) as f32 - 1.0);
        let c = Matrix::zeros(40, 16);
        let (out, _) = array.matmul(&a, &b, &c).unwrap();
        assert_eq!(max_abs_diff(&out, &reference(&a, &b, &c)), 0.0);
    }

    #[test]
    fn pe_inspection() {
        let cfg = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4).unwrap();
        let mut array = FunctionalArray::new(cfg);
        let b = bf16_matrix(2, 2, |i, j| (i * 2 + j) as f32);
        array.load_weights(&b).unwrap();
        // PE(r, c) lane 0 holds B[r][c] after the load completes.
        assert_eq!(array.pe(0, 1).weights()[0], 1.0);
        assert_eq!(array.pe(1, 0).weights()[0], 2.0);
    }
}
