//! # rasa-systolic — the Register-Aware Systolic Array matrix engine
//!
//! This crate implements the paper's primary contribution: a weight-
//! stationary (WS) systolic array used as a CPU matrix functional unit, with
//! the **RASA-Control** pipelining schemes and **RASA-Data** processing-
//! element variants that combat fill/drain under-utilization when the tile
//! size is limited by the CPU's tile registers.
//!
//! The crate has three cooperating layers:
//!
//! * **Functional model** ([`FunctionalArray`]) — a register-level,
//!   cycle-stepped WS array that streams real BF16/FP32 data through PE
//!   registers and is validated bit-for-bit against the reference GEMM in
//!   `rasa-numeric` for every PE variant. It also reports per-cycle active
//!   PE counts, which reproduce the utilization walkthrough of Fig. 1.
//! * **Timing model** ([`stage_durations`], [`MatmulTiming`]) — closed-form
//!   sub-stage durations (Weight Load / Feed First / Feed Second / Drain)
//!   and the Eq. 1 latency, parameterised by the PE variant.
//! * **Matrix engine scheduler** ([`MatrixEngine`]) — accepts `rasa_mm`
//!   requests in program order, applies the control-scheme constraints
//!   (BASE / PIPE / WLBP / WLS), tracks tile-register dirty bits for weight
//!   load bypass, and returns per-instruction completion times in engine
//!   cycles. The CPU model in `rasa-cpu` drives it through this interface.
//!
//! ## Example: latency of one `rasa_mm` on the paper's configuration
//!
//! ```
//! use rasa_systolic::{SystolicConfig, PeVariant, ControlScheme, TileDims, stage_durations};
//!
//! let cfg = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base)?;
//! let tile = TileDims::full(&cfg);
//! let d = stage_durations(&cfg, tile);
//! // 2·TK + TM + TN − 1 = 95 cycles, the paper's L_baseline.
//! assert_eq!(d.total(), 95);
//! # Ok::<(), rasa_systolic::SystolicError>(())
//! ```

#![deny(missing_docs)]

mod array;
mod config;
mod engine;
mod error;
mod pe;
mod stage;
mod stats;
mod timing;
mod utilization;

pub use array::{ArrayActivity, FunctionalArray};
pub use config::{ControlScheme, PeVariant, SystolicConfig};
pub use engine::{EngineCompletion, MatrixEngine, MmCompletion, MmRequest};
pub use error::SystolicError;
pub use pe::{Pe, PeState};
pub use stage::{MatmulTiming, StageDurations, StageWindow, SubStage};
pub use stats::EngineStats;
pub use timing::{base_latency, stage_durations, steady_state_interval, TileDims};
pub use utilization::{
    average_utilization, fill_drain_inactive_cycles, pipelined_utilization, utilization_curve,
    UtilizationPoint,
};
