use crate::{ControlScheme, StageDurations, SystolicConfig, SystolicError};
use std::fmt;

/// The logical dimensions of one `rasa_mm` tile: a TM×TK input tile, a
/// TK×TN weight tile and a TM×TN accumulator tile.
///
/// Edge tiles of a larger GEMM may be smaller than the register capacity;
/// the timing model charges them their actual extents (a clipped tile fills
/// and drains faster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileDims {
    /// Rows of the A/C tiles (M extent).
    pub tm: usize,
    /// Reduction extent (K).
    pub tk: usize,
    /// Columns of the C tile (N extent).
    pub tn: usize,
}

impl TileDims {
    /// Creates tile dimensions.
    #[must_use]
    pub const fn new(tm: usize, tk: usize, tn: usize) -> Self {
        TileDims { tm, tk, tn }
    }

    /// The largest tile the given array configuration accepts: TM equal to
    /// the tile-register row count (16 for the AMX-like ISA) and TK/TN at
    /// the array capacity.
    #[must_use]
    pub const fn full(config: &SystolicConfig) -> Self {
        TileDims {
            tm: 16,
            tk: config.max_tk(),
            tn: config.max_tn(),
        }
    }

    /// Number of multiply-accumulate operations in the tile.
    #[must_use]
    pub const fn macs(&self) -> usize {
        self.tm * self.tk * self.tn
    }

    /// Validates the tile against an array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::TileTooLarge`] when the K or N extent
    /// exceeds the array, and [`SystolicError::InvalidConfig`] for an empty
    /// tile.
    pub fn validate(&self, config: &SystolicConfig) -> Result<(), SystolicError> {
        if self.tm == 0 || self.tk == 0 || self.tn == 0 {
            return Err(SystolicError::InvalidConfig {
                reason: format!("tile dimensions must be non-zero, got {self}"),
            });
        }
        if self.tk > config.max_tk() || self.tn > config.max_tn() {
            return Err(SystolicError::TileTooLarge {
                tm: self.tm,
                tk: self.tk,
                tn: self.tn,
                max_tk: config.max_tk(),
                max_tn: config.max_tn(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for TileDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.tm, self.tk, self.tn)
    }
}

/// Number of physical PE rows a tile of depth `tk` occupies on the array
/// (double-multiplier PEs fold two K positions per row).
#[must_use]
pub(crate) fn occupied_rows(config: &SystolicConfig, tk: usize) -> u64 {
    tk.div_ceil(config.pe().multipliers_per_pe()) as u64
}

/// Closed-form sub-stage durations (§IV-B) for `tile` on `config`:
///
/// * Weight Load — one cycle per occupied physical row (`R`);
/// * Feed First — `TM` cycles (one A/C row pair per cycle into array row 0);
/// * Feed Second — `R − 1` cycles to finish the skewed feed of the
///   remaining rows;
/// * Drain — `TN` cycles to eject the outputs, plus one extra cycle when the
///   double-multiplier merge-adder row is present.
///
/// The serialized total equals Eq. 1 of the paper,
/// `L_tot = 2·TK + TM + TN − 1` for the baseline PE at full tile size
/// (95 cycles on the evaluated 32×16 array).
#[must_use]
pub fn stage_durations(config: &SystolicConfig, tile: TileDims) -> StageDurations {
    let rows = occupied_rows(config, tile.tk).max(1);
    let merge = u64::from(config.pe().needs_merge_adder_row());
    StageDurations {
        wl: rows,
        ff: tile.tm as u64,
        fs: rows - 1,
        dr: tile.tn as u64 + merge,
    }
}

/// The Eq. 1 serialized latency of a single `rasa_mm` on `config` — the
/// issue-to-issue interval of the BASE design.
#[must_use]
pub fn base_latency(config: &SystolicConfig, tile: TileDims) -> u64 {
    stage_durations(config, tile).total()
}

/// The steady-state issue interval (cycles per `rasa_mm`) for back-to-back
/// instructions under a control scheme, assuming operands are always ready.
///
/// `weight_reused` indicates whether consecutive instructions name the same
/// (clean) weight register; it only matters for the bypass-capable schemes.
///
/// This closed form is what the batch-size asymptote of Fig. 7 follows: a
/// perfectly pipelined RASA-DMDB-WLS issues one `rasa_mm` every TM = 16
/// cycles against the 95-cycle baseline, i.e. a normalized runtime of
/// 16 / 95 ≈ 0.168.
#[must_use]
pub fn steady_state_interval(config: &SystolicConfig, tile: TileDims, weight_reused: bool) -> u64 {
    let d = stage_durations(config, tile);
    match config.control() {
        ControlScheme::Base => d.total(),
        ControlScheme::Pipe => d.wl + d.ff + d.fs,
        ControlScheme::Wlbp => {
            if weight_reused {
                d.ff
            } else {
                d.wl + d.ff + d.fs
            }
        }
        ControlScheme::Wls => {
            if weight_reused {
                d.ff
            } else {
                // The shadow-buffer prefetch hides WL behind the previous
                // instruction's compute, but the single weight-load channel
                // still limits throughput to one load per WL duration.
                d.ff.max(d.wl)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeVariant;

    fn cfg(pe: PeVariant, control: ControlScheme) -> SystolicConfig {
        SystolicConfig::paper(pe, control).unwrap()
    }

    #[test]
    fn baseline_full_tile_is_95_cycles() {
        let c = cfg(PeVariant::Baseline, ControlScheme::Base);
        let d = stage_durations(&c, TileDims::full(&c));
        assert_eq!(d.wl, 32);
        assert_eq!(d.ff, 16);
        assert_eq!(d.fs, 31);
        assert_eq!(d.dr, 16);
        assert_eq!(d.total(), 95);
        assert_eq!(base_latency(&c, TileDims::full(&c)), 95);
    }

    #[test]
    fn equation_one_matches_for_arbitrary_tiles() {
        // L_tot = 2·TK + TM + TN − 1 for single-multiplier PEs.
        let c = cfg(PeVariant::Baseline, ControlScheme::Base);
        for (tm, tk, tn) in [(2, 2, 2), (16, 32, 16), (8, 20, 10), (1, 1, 1)] {
            let tile = TileDims::new(tm, tk, tn);
            assert_eq!(
                base_latency(&c, tile),
                (2 * tk + tm + tn - 1) as u64,
                "tile {tile}"
            );
        }
    }

    #[test]
    fn toy_2x2_example_latency() {
        // Fig. 1: a 2×2 array with TM=TN=TK=2 has a 7-cycle total latency
        // (2·2 + 2 + 2 − 1).
        let c = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4).unwrap();
        assert_eq!(base_latency(&c, TileDims::new(2, 2, 2)), 7);
    }

    #[test]
    fn dm_halves_fill_and_drain() {
        let c = cfg(PeVariant::Dm, ControlScheme::Base);
        let d = stage_durations(&c, TileDims::full(&c));
        // 16 physical rows hold the 32-deep weight tile.
        assert_eq!(d.wl, 16);
        assert_eq!(d.fs, 15);
        // The merge-adder row adds one drain cycle.
        assert_eq!(d.dr, 17);
        assert_eq!(d.total(), 64);
    }

    #[test]
    fn dm_odd_depth_rounds_rows_up() {
        let c = cfg(PeVariant::Dmdb, ControlScheme::Wls);
        let d = stage_durations(&c, TileDims::new(16, 31, 16));
        assert_eq!(d.wl, 16);
    }

    #[test]
    fn partial_tiles_are_cheaper() {
        let c = cfg(PeVariant::Baseline, ControlScheme::Base);
        let full = base_latency(&c, TileDims::full(&c));
        let partial = base_latency(&c, TileDims::new(4, 32, 16));
        assert!(partial < full);
        assert_eq!(full - partial, 12);
    }

    #[test]
    fn tile_validation() {
        let c = cfg(PeVariant::Baseline, ControlScheme::Base);
        assert!(TileDims::new(16, 32, 16).validate(&c).is_ok());
        assert!(TileDims::new(16, 33, 16).validate(&c).is_err());
        assert!(TileDims::new(16, 32, 17).validate(&c).is_err());
        assert!(TileDims::new(0, 32, 16).validate(&c).is_err());
        // Large TM is allowed (it is a streaming dimension).
        assert!(TileDims::new(64, 32, 16).validate(&c).is_ok());
        // The DM array still accepts TK=32 because each PE folds two rows.
        let dm = cfg(PeVariant::Dm, ControlScheme::Base);
        assert!(TileDims::new(16, 32, 16).validate(&dm).is_ok());
    }

    #[test]
    fn steady_state_intervals_match_schemes() {
        let tile = TileDims::new(16, 32, 16);
        let base = cfg(PeVariant::Baseline, ControlScheme::Base);
        assert_eq!(steady_state_interval(&base, tile, false), 95);

        let pipe = cfg(PeVariant::Baseline, ControlScheme::Pipe);
        assert_eq!(steady_state_interval(&pipe, tile, false), 79);
        assert_eq!(steady_state_interval(&pipe, tile, true), 79);

        let wlbp = cfg(PeVariant::Baseline, ControlScheme::Wlbp);
        assert_eq!(steady_state_interval(&wlbp, tile, true), 16);
        assert_eq!(steady_state_interval(&wlbp, tile, false), 79);

        let wls = cfg(PeVariant::Db, ControlScheme::Wls);
        assert_eq!(steady_state_interval(&wls, tile, true), 16);
        assert_eq!(steady_state_interval(&wls, tile, false), 32);

        let dmdb = cfg(PeVariant::Dmdb, ControlScheme::Wls);
        assert_eq!(steady_state_interval(&dmdb, tile, true), 16);
        assert_eq!(steady_state_interval(&dmdb, tile, false), 16);
    }

    #[test]
    fn interval_never_exceeds_base_latency() {
        let tile = TileDims::new(16, 32, 16);
        for pe in PeVariant::all() {
            for scheme in ControlScheme::all() {
                let Ok(c) = SystolicConfig::paper(pe, scheme) else {
                    continue;
                };
                for reuse in [false, true] {
                    assert!(steady_state_interval(&c, tile, reuse) <= base_latency(&c, tile));
                }
            }
        }
    }

    #[test]
    fn tile_display_and_macs() {
        let t = TileDims::new(16, 32, 16);
        assert_eq!(t.to_string(), "16x32x16");
        assert_eq!(t.macs(), 8192);
    }
}
