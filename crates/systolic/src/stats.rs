use std::fmt;

/// Aggregate statistics collected by the [`crate::MatrixEngine`] over a run.
///
/// The counters distinguish *why* Weight Load latency was or was not paid on
/// each `rasa_mm`, which is the mechanism behind the runtime differences of
/// the RASA-Control schemes in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Number of `rasa_mm` instructions executed.
    pub matmuls: u64,
    /// Instructions whose Weight Load was skipped because the weight
    /// register was reused with a clear dirty bit (WLBP / WLS).
    pub weight_bypasses: u64,
    /// Instructions whose Weight Load was hidden behind a previous
    /// instruction via the shadow-buffer prefetch (WLS only).
    pub weight_prefetches: u64,
    /// Instructions that paid the full, exposed Weight Load latency.
    pub full_weight_loads: u64,
    /// Total engine cycles spent in each instruction's occupancy, summed
    /// over instructions (overlapping cycles are counted once per
    /// instruction; this is an occupancy metric, not a wall-clock one).
    pub occupancy_cycles: u64,
    /// Engine cycle at which the last instruction completed (wall-clock
    /// busy horizon).
    pub last_completion_cycle: u64,
    /// Total multiply-accumulate operations executed.
    pub total_macs: u64,
    /// Cycles an instruction's Feed First was delayed waiting for its
    /// operands (input/accumulator registers not ready).
    pub operand_stall_cycles: u64,
    /// Cycles an instruction's Feed First was delayed by the array itself
    /// (structural: previous instruction still occupying the stages it
    /// needs).
    pub structural_stall_cycles: u64,
}

impl EngineStats {
    /// Folds the counters of a later execution interval into this one.
    ///
    /// Additive counters add; `last_completion_cycle` is a horizon and takes
    /// the maximum. Folding the per-interval statistics of a segmented run
    /// in order reproduces the counters of the unsegmented run exactly.
    pub fn accumulate(&mut self, interval: &EngineStats) {
        self.matmuls += interval.matmuls;
        self.weight_bypasses += interval.weight_bypasses;
        self.weight_prefetches += interval.weight_prefetches;
        self.full_weight_loads += interval.full_weight_loads;
        self.occupancy_cycles += interval.occupancy_cycles;
        self.last_completion_cycle = self
            .last_completion_cycle
            .max(interval.last_completion_cycle);
        self.total_macs += interval.total_macs;
        self.operand_stall_cycles += interval.operand_stall_cycles;
        self.structural_stall_cycles += interval.structural_stall_cycles;
    }

    /// Fraction of `rasa_mm` instructions that skipped Weight Load via the
    /// dirty-bit bypass.
    #[must_use]
    pub fn bypass_rate(&self) -> f64 {
        if self.matmuls == 0 {
            0.0
        } else {
            self.weight_bypasses as f64 / self.matmuls as f64
        }
    }

    /// Average issue-to-issue interval in engine cycles (wall-clock horizon
    /// divided by instruction count).
    #[must_use]
    pub fn average_interval(&self) -> f64 {
        if self.matmuls == 0 {
            0.0
        } else {
            self.last_completion_cycle as f64 / self.matmuls as f64
        }
    }

    /// Effective MACs per engine cycle over the busy horizon.
    #[must_use]
    pub fn macs_per_cycle(&self) -> f64 {
        if self.last_completion_cycle == 0 {
            0.0
        } else {
            self.total_macs as f64 / self.last_completion_cycle as f64
        }
    }

    /// Average PE utilization over the busy horizon given the array's peak
    /// MAC throughput per cycle.
    #[must_use]
    pub fn utilization(&self, peak_macs_per_cycle: usize) -> f64 {
        if peak_macs_per_cycle == 0 {
            0.0
        } else {
            self.macs_per_cycle() / peak_macs_per_cycle as f64
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rasa_mm ({} bypassed, {} prefetched, {} full WL), horizon {} cycles, {:.2} MACs/cycle",
            self.matmuls,
            self.weight_bypasses,
            self.weight_prefetches,
            self.full_weight_loads,
            self.last_completion_cycle,
            self.macs_per_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_instructions_are_zero() {
        let s = EngineStats::default();
        assert_eq!(s.bypass_rate(), 0.0);
        assert_eq!(s.average_interval(), 0.0);
        assert_eq!(s.macs_per_cycle(), 0.0);
        assert_eq!(s.utilization(512), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = EngineStats {
            matmuls: 10,
            weight_bypasses: 5,
            weight_prefetches: 2,
            full_weight_loads: 3,
            occupancy_cycles: 950,
            last_completion_cycle: 400,
            total_macs: 10 * 8192,
            operand_stall_cycles: 12,
            structural_stall_cycles: 30,
        };
        assert!((s.bypass_rate() - 0.5).abs() < 1e-12);
        assert!((s.average_interval() - 40.0).abs() < 1e-12);
        assert!((s.macs_per_cycle() - 204.8).abs() < 1e-9);
        assert!(s.utilization(512) > 0.39 && s.utilization(512) < 0.41);
        assert_eq!(s.utilization(0), 0.0);
        let text = s.to_string();
        assert!(text.contains("10 rasa_mm"));
        assert!(text.contains("5 bypassed"));
    }
}
