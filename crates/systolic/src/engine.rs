use crate::{
    stage_durations, ControlScheme, EngineStats, MatmulTiming, StageWindow, SystolicConfig,
    SystolicError, TileDims,
};
use rasa_isa::{TileReg, NUM_TILE_REGS};
use std::collections::VecDeque;

/// One `rasa_mm` handed to the matrix engine.
///
/// The CPU model resolves register dependencies and tells the engine, in
/// engine cycles, when each operand class becomes available:
///
/// * `weight_ready` — when the B (stationary weight) tile register value is
///   readable, which gates Weight Load (and the WLS shadow prefetch);
/// * `input_ready` — when both the A tile and the C accumulator tile are
///   readable, which gates Feed First.
///
/// Splitting the two lets RASA-WLS start prefetching weights while the
/// accumulator of a dependent chain is still draining, exactly the behaviour
/// the shadow buffer exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmRequest {
    /// The weight (B) operand register, used for dirty-bit bypass tracking.
    pub weight_reg: TileReg,
    /// Logical tile dimensions of this instruction.
    pub tile: TileDims,
    /// Engine cycle at which the weight operand is available.
    pub weight_ready: u64,
    /// Engine cycle at which the A and C operands are available.
    pub input_ready: u64,
}

impl MmRequest {
    /// Creates a request whose operands are all ready at `ready`.
    #[must_use]
    pub const fn ready_at(weight_reg: TileReg, tile: TileDims, ready: u64) -> Self {
        MmRequest {
            weight_reg,
            tile,
            weight_ready: ready,
            input_ready: ready,
        }
    }
}

/// The engine's answer for one submitted [`MmRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmCompletion {
    /// Resolved sub-stage schedule.
    pub timing: MatmulTiming,
    /// Engine cycle at which the destination tile register holds the final
    /// accumulator values (equals `timing.complete_cycle()`).
    pub complete_cycle: u64,
}

/// A timestamped completion event recorded by the engine.
///
/// Every accepted [`MmRequest`] enqueues exactly one completion event; an
/// event-driven host drains them with [`MatrixEngine::take_completions`]
/// and schedules its own wakeups from the timestamps instead of polling
/// engine state cycle by cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCompletion {
    /// Program-order submission index of the instruction (the engine's
    /// internal sequence counter at submit time).
    pub sequence: u64,
    /// Engine cycle at which the instruction's result is architecturally
    /// visible (its Drain end).
    pub complete_cycle: u64,
}

/// The RASA matrix engine scheduler.
///
/// The engine accepts `rasa_mm` instructions **in program order** and
/// resolves the start cycle of each sub-stage under the configured
/// RASA-Control scheme:
///
/// * **BASE** — an instruction may not load weights before the previous one
///   has fully drained.
/// * **PIPE** — Weight Load may overlap the previous instruction's Drain.
/// * **WLBP** — additionally, when the weight register is reused with a
///   clear dirty bit, Weight Load is skipped and Feed First may start as
///   soon as the previous instruction's Feed First has finished.
/// * **WLS** — additionally, when the weight register changes, the new
///   weights are prefetched into the shadow plane over dedicated links
///   while the previous instruction computes; Feed First then only waits
///   for the previous Feed First and for the prefetch wavefront to stay one
///   row ahead.
///
/// Dirty bits are maintained exactly as §IV-B describes: every tile-register
/// write reported through [`MatrixEngine::note_tile_write`] sets the bit;
/// installing a register as the stationary weight plane clears it.
///
/// ```
/// use rasa_systolic::{MatrixEngine, MmRequest, SystolicConfig, PeVariant, ControlScheme, TileDims};
/// use rasa_isa::TileReg;
///
/// let cfg = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp)?;
/// let mut engine = MatrixEngine::new(cfg);
/// let b = TileReg::new(4).expect("valid register");
/// let tile = TileDims::new(16, 32, 16);
/// let first = engine.submit(MmRequest::ready_at(b, tile, 0))?;
/// let second = engine.submit(MmRequest::ready_at(b, tile, 0))?;
/// // The second instruction reuses the weights: its Feed First starts right
/// // after the first one's Feed First (TM = 16 cycles later).
/// assert!(second.timing.weight_bypassed);
/// assert_eq!(second.timing.ff.start, first.timing.ff.start + 16);
/// # Ok::<(), rasa_systolic::SystolicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MatrixEngine {
    config: SystolicConfig,
    stats: EngineStats,
    sequence: u64,
    prev: Option<MatmulTiming>,
    installed_weights: Option<TileReg>,
    dirty: [bool; NUM_TILE_REGS],
    /// Engine cycle at which the (single) weight-load channel is free.
    wl_channel_free: u64,
    /// Completion cycles of the most recent in-flight instructions, bounded
    /// by the configuration's `max_in_flight`.
    in_flight: VecDeque<u64>,
    /// Completion events recorded by `submit` and not yet drained through
    /// [`MatrixEngine::take_completions`].
    pending_completions: Vec<EngineCompletion>,
}

impl MatrixEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new(config: SystolicConfig) -> Self {
        MatrixEngine {
            config,
            stats: EngineStats::default(),
            sequence: 0,
            prev: None,
            installed_weights: None,
            dirty: [true; NUM_TILE_REGS],
            wl_channel_free: 0,
            in_flight: VecDeque::new(),
            pending_completions: Vec::new(),
        }
    }

    /// The engine configuration.
    #[must_use]
    pub const fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub const fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The engine cycle at which all submitted work completes.
    #[must_use]
    pub fn busy_horizon(&self) -> u64 {
        self.stats.last_completion_cycle
    }

    /// Converts engine cycles to CPU core cycles using the configured clock
    /// ratio (the paper's array runs at 500 MHz under a 2 GHz core).
    #[must_use]
    pub fn core_cycles(&self, engine_cycles: u64) -> u64 {
        engine_cycles * u64::from(self.config.clock_ratio())
    }

    /// Records that `reg` was overwritten (by `rasa_tl`, `rasa_tz` or as a
    /// `rasa_mm` destination), setting its dirty bit. Must be called in
    /// program order relative to [`MatrixEngine::submit`].
    pub fn note_tile_write(&mut self, reg: TileReg) {
        self.dirty[reg.index()] = true;
        if self.installed_weights == Some(reg) {
            self.installed_weights = None;
        }
    }

    /// Resets all scheduling and dirty-bit state, keeping the configuration.
    pub fn reset(&mut self) {
        self.stats = EngineStats::default();
        self.sequence = 0;
        self.prev = None;
        self.installed_weights = None;
        self.dirty = [true; NUM_TILE_REGS];
        self.wl_channel_free = 0;
        self.in_flight.clear();
        self.pending_completions.clear();
    }

    /// Zeroes the accumulated statistics without touching any scheduling
    /// state. Used by segmented hosts that harvest per-interval counters and
    /// fold them externally via [`EngineStats::accumulate`].
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of `rasa_mm` instructions submitted so far (the sequence the
    /// next submission will be assigned).
    #[must_use]
    pub const fn submitted(&self) -> u64 {
        self.sequence
    }

    /// Shifts the engine's scheduling state `engine_cycles` later in time
    /// and `sequences` further along the instruction stream — the state a
    /// perfectly periodic execution would reach after that much more work.
    ///
    /// Time-valued fields move by `engine_cycles`; sequence-valued fields by
    /// `sequences`. The weight-load channel timestamp is only meaningful
    /// once a prefetch has used it, so a zero (never-used) channel stays
    /// zero. Statistics, configuration and register-identity state (the
    /// installed weight plane and dirty bits) are untouched.
    pub fn shift_state(&mut self, engine_cycles: u64, sequences: u64) {
        self.sequence += sequences;
        if let Some(prev) = self.prev {
            self.prev = Some(prev.shifted(engine_cycles, sequences));
        }
        if self.wl_channel_free != 0 {
            self.wl_channel_free += engine_cycles;
        }
        for completion in &mut self.in_flight {
            *completion += engine_cycles;
        }
        for event in &mut self.pending_completions {
            event.sequence += sequences;
            event.complete_cycle += engine_cycles;
        }
    }

    /// Whether another engine is in exactly the same *scheduling* state as
    /// this one: same position in the instruction stream, same resolved
    /// previous schedule, weight-plane installation, dirty bits, channel and
    /// in-flight occupancy, and same undrained completion events.
    /// Accumulated statistics are deliberately excluded — two engines that
    /// agree on this predicate schedule all future submissions identically.
    #[must_use]
    pub fn scheduling_state_eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.sequence == other.sequence
            && self.prev == other.prev
            && self.installed_weights == other.installed_weights
            && self.dirty == other.dirty
            && self.wl_channel_free == other.wl_channel_free
            && self.in_flight == other.in_flight
            && self.pending_completions == other.pending_completions
    }

    /// Drains the completion events recorded since the last call, in
    /// submission order.
    ///
    /// Each accepted [`MmRequest`] records exactly one [`EngineCompletion`];
    /// an event-driven host (the `rasa-cpu` scheduler) pairs the drained
    /// events with its own bookkeeping and inserts the timestamps into its
    /// event heap rather than polling the engine for per-instruction state.
    pub fn take_completions(&mut self) -> Vec<EngineCompletion> {
        std::mem::take(&mut self.pending_completions)
    }

    /// Submits the next `rasa_mm` in program order and returns its resolved
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::TileTooLarge`] / [`SystolicError::InvalidConfig`]
    /// when the tile does not fit the array.
    pub fn submit(&mut self, req: MmRequest) -> Result<MmCompletion, SystolicError> {
        req.tile.validate(&self.config)?;
        let d = stage_durations(&self.config, req.tile);
        let scheme = self.config.control();

        let can_bypass = scheme.supports_weight_bypass()
            && self.installed_weights == Some(req.weight_reg)
            && !self.dirty[req.weight_reg.index()];

        // Oldest in-flight instruction must have completed before a new one
        // may start occupying the array.
        let window_floor = if self.in_flight.len() >= self.config.max_in_flight() {
            *self.in_flight.front().expect("non-empty when at capacity")
        } else {
            0
        };

        let prev = self.prev;
        let prev_dr_end = prev.map_or(0, |p| p.dr.end);
        let prev_fs_end = prev.map_or(0, |p| p.fs.end);
        let prev_ff_end = prev.map_or(0, |p| p.ff.end);
        let prev_ff_start = prev.map_or(0, |p| p.ff.start);

        let mut weight_bypassed = false;
        let mut weight_prefetched = false;

        // Structural earliest Feed First (ignoring operand readiness), used
        // for the stall accounting below.
        let structural_ff;
        let (wl, ff_start) = if can_bypass {
            weight_bypassed = true;
            let structural = match scheme {
                // WLBP/WLS: FF may overlap the previous FS and DR.
                ControlScheme::Wlbp | ControlScheme::Wls => prev_ff_end,
                _ => unreachable!("bypass only offered by WLBP/WLS"),
            }
            .max(window_floor);
            structural_ff = structural;
            let ff_start = structural.max(req.input_ready);
            (StageWindow::skipped(ff_start), ff_start)
        } else {
            match scheme {
                ControlScheme::Base => {
                    let wl_start = req.weight_ready.max(prev_dr_end).max(window_floor);
                    let wl = StageWindow::new(wl_start, d.wl);
                    structural_ff = wl.end;
                    let ff_start = wl.end.max(req.input_ready);
                    (wl, ff_start)
                }
                ControlScheme::Pipe | ControlScheme::Wlbp => {
                    // Weight Load overlaps the previous Drain but not the
                    // previous compute (the baseline PEs share the vertical
                    // links between weights and partial sums).
                    let wl_start = req.weight_ready.max(prev_fs_end).max(window_floor);
                    let wl = StageWindow::new(wl_start, d.wl);
                    structural_ff = wl.end;
                    let ff_start = wl.end.max(req.input_ready);
                    (wl, ff_start)
                }
                ControlScheme::Wls => {
                    // Prefetch into the shadow plane on the dedicated links:
                    // the channel serializes loads, and the shadow plane of
                    // the previous instruction frees once its weights swap
                    // into the active plane at its Feed First start.
                    weight_prefetched = true;
                    let wl_start = req
                        .weight_ready
                        .max(self.wl_channel_free)
                        .max(prev_ff_start)
                        .max(window_floor);
                    let wl = StageWindow::new(wl_start, d.wl);
                    self.wl_channel_free = wl.end;
                    // Feed First only needs to stay one row behind the
                    // prefetch wavefront and wait for the previous Feed
                    // First to vacate row 0.
                    let structural = (wl.start + 1).max(prev_ff_end).max(window_floor);
                    structural_ff = structural;
                    let ff_start = structural.max(req.input_ready);
                    (wl, ff_start)
                }
            }
        };

        let ff = StageWindow::new(ff_start, d.ff);
        let fs = StageWindow::new(ff.end, d.fs);
        let dr = StageWindow::new(fs.end, d.dr);

        let timing = MatmulTiming {
            sequence: self.sequence,
            wl,
            ff,
            fs,
            dr,
            weight_bypassed,
            weight_prefetched,
        };

        // Weight-plane bookkeeping: a performed load installs the register
        // (clearing its dirty bit); a bypass leaves the installation as is.
        if !weight_bypassed {
            self.installed_weights = Some(req.weight_reg);
            self.dirty[req.weight_reg.index()] = false;
        }

        // Stall accounting.
        let operand_stall = ff_start.saturating_sub(structural_ff);
        let idle_floor = prev_dr_end.min(structural_ff);
        let structural_stall = structural_ff.saturating_sub(idle_floor);

        self.stats.matmuls += 1;
        if weight_bypassed {
            self.stats.weight_bypasses += 1;
        } else if weight_prefetched {
            self.stats.weight_prefetches += 1;
        } else {
            self.stats.full_weight_loads += 1;
        }
        self.stats.occupancy_cycles += timing.latency();
        self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(dr.end);
        self.stats.total_macs += req.tile.macs() as u64;
        self.stats.operand_stall_cycles += operand_stall;
        self.stats.structural_stall_cycles += structural_stall;

        self.in_flight.push_back(dr.end);
        while self.in_flight.len() > self.config.max_in_flight() {
            self.in_flight.pop_front();
        }
        self.pending_completions.push(EngineCompletion {
            sequence: self.sequence,
            complete_cycle: dr.end,
        });
        self.sequence += 1;
        self.prev = Some(timing);

        Ok(MmCompletion {
            timing,
            complete_cycle: dr.end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeVariant;

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    fn engine(pe: PeVariant, control: ControlScheme) -> MatrixEngine {
        MatrixEngine::new(SystolicConfig::paper(pe, control).unwrap())
    }

    const FULL: TileDims = TileDims::new(16, 32, 16);

    /// Submits `n` requests alternating between weight registers with the
    /// given period (period 1 = always the same register, 2 = B0 B0 B1 B1 …
    /// style reuse is period 2 with repeat 2, etc.).
    fn run_pattern(
        engine: &mut MatrixEngine,
        n: usize,
        regs: &[u8],
        repeat: usize,
    ) -> Vec<MmCompletion> {
        (0..n)
            .map(|i| {
                let reg = regs[(i / repeat) % regs.len()];
                engine
                    .submit(MmRequest::ready_at(treg(reg), FULL, 0))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn base_serializes_at_95_cycles() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Base);
        let done = run_pattern(&mut e, 3, &[4], 1);
        assert_eq!(done[0].complete_cycle, 95);
        assert_eq!(done[1].timing.wl.start, 95);
        assert_eq!(done[1].complete_cycle, 190);
        assert_eq!(done[2].complete_cycle, 285);
        // BASE never bypasses even though the register is reused: every
        // instruction pays a full weight load.
        assert_eq!(e.stats().full_weight_loads, 3);
        assert_eq!(e.stats().weight_bypasses, 0);
        assert_eq!(e.stats().matmuls, 3);
    }

    #[test]
    fn pipe_overlaps_drain_with_weight_load() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Pipe);
        let done = run_pattern(&mut e, 3, &[4, 5], 1);
        // Steady-state interval = WL + FF + FS = 79 cycles.
        assert_eq!(done[1].timing.wl.start, done[0].timing.fs.end);
        assert_eq!(done[1].timing.ff.start - done[0].timing.ff.start, 79);
        assert_eq!(done[2].timing.ff.start - done[1].timing.ff.start, 79);
    }

    #[test]
    fn wlbp_bypasses_on_clean_reuse() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Wlbp);
        let done = run_pattern(&mut e, 4, &[4], 1);
        assert!(!done[0].timing.weight_bypassed);
        for c in &done[1..] {
            assert!(c.timing.weight_bypassed);
        }
        // Bypassed instructions issue every TM = 16 cycles.
        assert_eq!(done[1].timing.ff.start - done[0].timing.ff.start, 16);
        assert_eq!(done[2].timing.ff.start - done[1].timing.ff.start, 16);
        assert!((e.stats().bypass_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wlbp_reverts_to_pipe_when_weights_change() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Wlbp);
        let done = run_pattern(&mut e, 4, &[4, 5], 1);
        // Registers alternate every instruction: no bypass is ever possible.
        assert!(done.iter().all(|c| !c.timing.weight_bypassed));
        assert_eq!(done[1].timing.ff.start - done[0].timing.ff.start, 79);
    }

    #[test]
    fn dirty_write_invalidates_bypass() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Wlbp);
        let first = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        // A tile load overwrites the weight register between the two mm's.
        e.note_tile_write(treg(4));
        let second = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        assert!(!second.timing.weight_bypassed);
        assert!(second.timing.ff.start - first.timing.ff.start > 16);
        // Writing an unrelated register does not hurt the next reuse.
        e.note_tile_write(treg(0));
        let third = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        assert!(third.timing.weight_bypassed);
    }

    #[test]
    fn wls_hides_weight_load_behind_previous_compute() {
        let mut e = engine(PeVariant::Db, ControlScheme::Wls);
        // Algorithm-1 style reuse: B0 B0 B1 B1 B0 B0 …
        let done = run_pattern(&mut e, 6, &[4, 5], 2);
        // Odd instructions bypass, even ones prefetch (except the first).
        assert!(!done[0].timing.weight_bypassed);
        assert!(done[1].timing.weight_bypassed);
        assert!(done[2].timing.weight_prefetched);
        assert!(done[3].timing.weight_bypassed);
        // The prefetched loads never expose the 32-cycle WL as idle time:
        // the average interval stays well under the PIPE interval.
        let interval = (done[5].timing.ff.start - done[1].timing.ff.start) as f64 / 4.0;
        assert!(interval < 30.0, "interval {interval}");
        assert!(e.stats().weight_prefetches >= 2);
    }

    #[test]
    fn dmdb_wls_reaches_the_16_cycle_asymptote() {
        let mut e = engine(PeVariant::Dmdb, ControlScheme::Wls);
        let done = run_pattern(&mut e, 8, &[4, 5], 2);
        // After the pipeline warms up, every instruction issues 16 cycles
        // after the previous one — the 16/95 asymptote of Fig. 7.
        for pair in done.windows(2).skip(2) {
            assert_eq!(
                pair[1].timing.ff.start - pair[0].timing.ff.start,
                16,
                "steady state should issue every TM cycles"
            );
        }
    }

    #[test]
    fn operand_readiness_delays_feed_but_not_prefetch() {
        let mut e = engine(PeVariant::Db, ControlScheme::Wls);
        e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        // The next instruction's inputs (A/C) are late but its weights are
        // ready: the prefetch starts early, the feed waits for the inputs.
        let c = e
            .submit(MmRequest {
                weight_reg: treg(5),
                tile: FULL,
                weight_ready: 0,
                input_ready: 200,
            })
            .unwrap();
        assert!(c.timing.wl.start < 100);
        assert_eq!(c.timing.ff.start, 200);
        assert!(e.stats().operand_stall_cycles > 0);
    }

    #[test]
    fn scheme_ordering_on_a_realistic_pattern() {
        // 64 instructions with Algorithm-1 reuse (two consecutive uses per
        // weight register): the paper's ordering BASE > PIPE > WLBP >
        // DM-WLBP > DB-WLS >= DMDB-WLS must hold for the busy horizon.
        let mut horizons = Vec::new();
        let designs = [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ];
        for (pe, scheme) in designs {
            let mut e = engine(pe, scheme);
            run_pattern(&mut e, 64, &[4, 5], 2);
            horizons.push(e.busy_horizon());
        }
        for pair in horizons.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "expected monotone improvement, got {horizons:?}"
            );
        }
        // And the end points are meaningfully apart (roughly 95 vs ~16-24
        // cycles per instruction).
        assert!(horizons[0] > 3 * horizons[5]);
    }

    #[test]
    fn in_flight_limit_throttles_issue() {
        let cfg = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls)
            .unwrap()
            .with_max_in_flight(1);
        let mut e = MatrixEngine::new(cfg);
        let a = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        let b = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        // With a single instruction in flight the second cannot start its
        // feed before the first completes.
        assert!(b.timing.ff.start >= a.complete_cycle);
    }

    #[test]
    fn oversized_tile_is_rejected() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Base);
        let bad = TileDims::new(16, 64, 16);
        assert!(e.submit(MmRequest::ready_at(treg(0), bad, 0)).is_err());
        // Statistics are untouched by the failed submission.
        assert_eq!(e.stats().matmuls, 0);
    }

    #[test]
    fn core_cycle_conversion_uses_clock_ratio() {
        let e = engine(PeVariant::Baseline, ControlScheme::Base);
        assert_eq!(e.core_cycles(95), 380);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Wlbp);
        run_pattern(&mut e, 4, &[4], 1);
        assert!(e.busy_horizon() > 0);
        e.reset();
        assert_eq!(e.busy_horizon(), 0);
        assert_eq!(e.stats().matmuls, 0);
        let c = e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        assert!(!c.timing.weight_bypassed);
        assert_eq!(c.timing.wl.start, 0);
    }

    #[test]
    fn completion_events_are_recorded_in_submission_order() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Base);
        let done = run_pattern(&mut e, 3, &[4], 1);
        let events = e.take_completions();
        assert_eq!(events.len(), 3);
        for (i, (event, completion)) in events.iter().zip(&done).enumerate() {
            assert_eq!(event.sequence, i as u64);
            assert_eq!(event.complete_cycle, completion.complete_cycle);
        }
        // The queue drains: a second take returns nothing new.
        assert!(e.take_completions().is_empty());
        e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        let events = e.take_completions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].sequence, 3);
    }

    #[test]
    fn rejected_submissions_record_no_events_and_reset_clears_them() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Base);
        let bad = TileDims::new(16, 64, 16);
        assert!(e.submit(MmRequest::ready_at(treg(0), bad, 0)).is_err());
        assert!(e.take_completions().is_empty());
        e.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        e.reset();
        assert!(
            e.take_completions().is_empty(),
            "reset drops undrained events"
        );
    }

    #[test]
    fn shifted_engine_schedules_shifted_work_identically() {
        for (pe, scheme) in [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ] {
            let mut original = engine(pe, scheme);
            run_pattern(&mut original, 8, &[4, 5], 2);
            original.take_completions();
            let mut shifted = original.clone();
            shifted.shift_state(1000, 7);
            // A request stream offset by the same time delta must resolve to
            // the same schedule offset by that delta (and sequence delta).
            for i in 0..6u64 {
                let reg = treg(4 + (i as u8 / 2) % 2);
                let base = original
                    .submit(MmRequest::ready_at(reg, FULL, 5000 + i * 20))
                    .unwrap();
                let moved = shifted
                    .submit(MmRequest::ready_at(reg, FULL, 6000 + i * 20))
                    .unwrap();
                assert_eq!(
                    moved.timing,
                    base.timing.shifted(1000, 7),
                    "{pe:?}/{scheme:?}"
                );
                assert_eq!(moved.complete_cycle, base.complete_cycle + 1000);
            }
        }
    }

    #[test]
    fn scheduling_state_eq_ignores_stats_only() {
        let mut a = engine(PeVariant::Dmdb, ControlScheme::Wls);
        run_pattern(&mut a, 6, &[4, 5], 2);
        let mut b = a.clone();
        assert!(a.scheduling_state_eq(&b));
        // Statistics are excluded: zeroing them does not break equality.
        b.reset_stats();
        assert!(a.scheduling_state_eq(&b));
        assert_eq!(*b.stats(), EngineStats::default());
        // Any scheduling divergence does break it.
        b.submit(MmRequest::ready_at(treg(4), FULL, 0)).unwrap();
        assert!(!a.scheduling_state_eq(&b));
        assert_eq!(b.submitted(), a.submitted() + 1);
    }

    #[test]
    fn partial_tiles_complete_faster() {
        let mut e = engine(PeVariant::Baseline, ControlScheme::Base);
        let small = TileDims::new(4, 32, 16);
        let c = e.submit(MmRequest::ready_at(treg(4), small, 0)).unwrap();
        assert_eq!(c.complete_cycle, 83);
    }
}
