use crate::SystolicError;
use std::fmt;

/// RASA-Data processing-element variants (§IV-B, Fig. 4(c)).
///
/// All variants perform the same mixed-precision computation (BF16 × BF16
/// products accumulated in FP32); they differ in the per-PE resources and
/// therefore in the array geometry and the control optimizations they
/// enable:
///
/// * [`PeVariant::Baseline`] — one multiplier, one adder, a single weight
///   buffer.
/// * [`PeVariant::Db`] — **D**ouble **B**uffering: an extra weight buffer
///   plus dedicated weight links, enabling Weight Load Skip
///   ([`ControlScheme::Wls`]).
/// * [`PeVariant::Dm`] — **D**ouble **M**ultiplier: two multipliers and an
///   extra adder per PE so each PE covers two K positions; the array uses
///   half the rows (same total multiplier count) plus a merge-adder row at
///   the bottom.
/// * [`PeVariant::Dmdb`] — both DB and DM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PeVariant {
    /// Baseline PE: single multiplier, single weight buffer.
    Baseline,
    /// Double-buffered weights (enables WLS).
    Db,
    /// Double multiplier (two K positions per PE, merge-adder row).
    Dm,
    /// Double multiplier and double-buffered weights.
    Dmdb,
}

impl PeVariant {
    /// Number of weight buffers per PE (1, or 2 with double buffering).
    #[must_use]
    pub const fn weight_buffers(self) -> usize {
        match self {
            PeVariant::Baseline | PeVariant::Dm => 1,
            PeVariant::Db | PeVariant::Dmdb => 2,
        }
    }

    /// Number of multipliers per PE (and K positions folded into one PE).
    #[must_use]
    pub const fn multipliers_per_pe(self) -> usize {
        match self {
            PeVariant::Baseline | PeVariant::Db => 1,
            PeVariant::Dm | PeVariant::Dmdb => 2,
        }
    }

    /// Number of adders per PE.
    #[must_use]
    pub const fn adders_per_pe(self) -> usize {
        self.multipliers_per_pe()
    }

    /// Whether the variant has the shadow weight plane required by
    /// [`ControlScheme::Wls`].
    #[must_use]
    pub const fn has_double_buffering(self) -> bool {
        self.weight_buffers() == 2
    }

    /// Whether the variant folds two K positions per PE.
    #[must_use]
    pub const fn has_double_multiplier(self) -> bool {
        self.multipliers_per_pe() == 2
    }

    /// Whether the array needs the extra merge-adder row at the bottom
    /// (present exactly when two partial-sum chains per column must be
    /// reduced).
    #[must_use]
    pub const fn needs_merge_adder_row(self) -> bool {
        self.has_double_multiplier()
    }

    /// Short uppercase name used in design-point labels (`DB`, `DM`, …).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            PeVariant::Baseline => "BASE-PE",
            PeVariant::Db => "DB",
            PeVariant::Dm => "DM",
            PeVariant::Dmdb => "DMDB",
        }
    }

    /// All variants, in the order the paper presents them.
    #[must_use]
    pub const fn all() -> [PeVariant; 4] {
        [
            PeVariant::Baseline,
            PeVariant::Db,
            PeVariant::Dm,
            PeVariant::Dmdb,
        ]
    }
}

impl fmt::Display for PeVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// RASA-Control pipelining schemes (§IV-B, Fig. 4(b)).
///
/// The scheme decides how the sub-stages of consecutive `rasa_mm`
/// instructions may overlap on the array:
///
/// * [`ControlScheme::Base`] — no overlap; instructions are fully
///   serialized (one per `L_tot` cycles).
/// * [`ControlScheme::Pipe`] — the Drain of instruction *i* overlaps the
///   Weight Load of instruction *i+1*.
/// * [`ControlScheme::Wlbp`] — Weight Load Bypass: when the weight tile
///   register is reused and clean, Weight Load is skipped entirely and the
///   next Feed First may overlap the previous Feed Second/Drain.
/// * [`ControlScheme::Wls`] — Weight Load Skip: the next weights are
///   prefetched into the shadow buffer during the previous instruction's
///   compute, hiding Weight Load even when weights change. Requires a PE
///   variant with double buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ControlScheme {
    /// Fully serialized execution.
    Base,
    /// Basic pipelining: overlap previous Drain with next Weight Load.
    Pipe,
    /// Weight Load Bypass on weight-register reuse (includes PIPE).
    Wlbp,
    /// Weight Load Skip via shadow-buffer prefetch (includes WLBP and PIPE).
    Wls,
}

impl ControlScheme {
    /// Whether the scheme requires double-buffered weights.
    #[must_use]
    pub const fn requires_double_buffering(self) -> bool {
        matches!(self, ControlScheme::Wls)
    }

    /// Whether the scheme can skip Weight Load when the weight register is
    /// reused with a clear dirty bit.
    #[must_use]
    pub const fn supports_weight_bypass(self) -> bool {
        matches!(self, ControlScheme::Wlbp | ControlScheme::Wls)
    }

    /// Whether the scheme can run on a PE variant: every scheme except WLS
    /// works everywhere, and WLS needs the shadow weight plane of a
    /// double-buffered variant. This is the single validity rule of the
    /// (variant × scheme) design space; [`SystolicConfig::new`] enforces it
    /// and design-space enumeration filters with it.
    #[must_use]
    pub const fn is_supported_by(self, pe: PeVariant) -> bool {
        !self.requires_double_buffering() || pe.has_double_buffering()
    }

    /// Short uppercase name used in design-point labels.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ControlScheme::Base => "BASE",
            ControlScheme::Pipe => "PIPE",
            ControlScheme::Wlbp => "WLBP",
            ControlScheme::Wls => "WLS",
        }
    }

    /// All schemes, from least to most aggressive.
    #[must_use]
    pub const fn all() -> [ControlScheme; 4] {
        [
            ControlScheme::Base,
            ControlScheme::Pipe,
            ControlScheme::Wlbp,
            ControlScheme::Wls,
        ]
    }
}

impl fmt::Display for ControlScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Full configuration of the systolic-array matrix engine.
///
/// `rows` is the number of physical PE rows (the K dimension of the array)
/// and `cols` the number of physical PE columns (the N dimension). The
/// paper's evaluated arrays are 32×16 with single-multiplier PEs and 16×16
/// with double-multiplier PEs, keeping the total multiplier count at 512 in
/// both cases; [`SystolicConfig::paper`] encodes that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicConfig {
    rows: usize,
    cols: usize,
    pe: PeVariant,
    control: ControlScheme,
    /// CPU core cycles per engine cycle (the paper runs the array at
    /// 500 MHz under a 2 GHz core: ratio 4).
    clock_ratio: u32,
    /// Maximum number of `rasa_mm` instructions the engine tracks in flight.
    max_in_flight: usize,
}

impl SystolicConfig {
    /// Creates a configuration after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] for zero dimensions or a zero
    /// clock ratio, and [`SystolicError::UnsupportedCombination`] when the
    /// control scheme requires double buffering the PE variant lacks.
    pub fn new(
        rows: usize,
        cols: usize,
        pe: PeVariant,
        control: ControlScheme,
        clock_ratio: u32,
    ) -> Result<Self, SystolicError> {
        if rows == 0 || cols == 0 {
            return Err(SystolicError::InvalidConfig {
                reason: format!("array dimensions must be non-zero, got {rows}x{cols}"),
            });
        }
        if clock_ratio == 0 {
            return Err(SystolicError::InvalidConfig {
                reason: "clock ratio must be at least 1".to_string(),
            });
        }
        if !control.is_supported_by(pe) {
            return Err(SystolicError::UnsupportedCombination {
                scheme: control.label(),
                variant: pe.label(),
                reason: "weight load skip prefetches into a shadow weight buffer".to_string(),
            });
        }
        Ok(SystolicConfig {
            rows,
            cols,
            pe,
            control,
            clock_ratio,
            max_in_flight: 8,
        })
    }

    /// The paper's evaluated geometry for a given PE variant and control
    /// scheme: 32×16 PEs (16×16 with a double-multiplier variant, keeping
    /// the multiplier count constant), engine at 500 MHz under a 2 GHz core.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::UnsupportedCombination`] when `control`
    /// requires double buffering and `pe` lacks it.
    pub fn paper(pe: PeVariant, control: ControlScheme) -> Result<Self, SystolicError> {
        SystolicConfig::new(SystolicConfig::paper_rows(pe), 16, pe, control, 4)
    }

    /// The paper's baseline design: 32×16 baseline PEs, no pipelining.
    #[must_use]
    pub fn paper_baseline() -> Self {
        SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base)
            .expect("baseline combination is always valid")
    }

    /// The paper's PE-row convention for a variant: double-multiplier PEs
    /// cover two K positions, so the array halves its rows to keep the
    /// multiplier count at 512.
    #[must_use]
    pub const fn paper_rows(pe: PeVariant) -> usize {
        if pe.has_double_multiplier() {
            16
        } else {
            32
        }
    }

    /// Every valid (PE variant × control scheme) combination, variant-major
    /// in the paper's presentation order: 14 of the 16 raw pairs survive
    /// the WLS filter. This is the ground-truth count an exhaustive search
    /// over the paper's design space must cover (asserted by
    /// `tests/paper_claims.rs`).
    #[must_use]
    pub fn valid_combinations() -> Vec<(PeVariant, ControlScheme)> {
        PeVariant::all()
            .into_iter()
            .flat_map(|pe| {
                ControlScheme::all()
                    .into_iter()
                    .filter(move |scheme| scheme.is_supported_by(pe))
                    .map(move |scheme| (pe, scheme))
            })
            .collect()
    }

    /// Physical PE rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Physical PE columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// PE variant.
    #[must_use]
    pub const fn pe(&self) -> PeVariant {
        self.pe
    }

    /// Control scheme.
    #[must_use]
    pub const fn control(&self) -> ControlScheme {
        self.control
    }

    /// CPU cycles per engine cycle.
    #[must_use]
    pub const fn clock_ratio(&self) -> u32 {
        self.clock_ratio
    }

    /// Maximum `rasa_mm` instructions tracked in flight by the engine.
    #[must_use]
    pub const fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Total number of PEs.
    #[must_use]
    pub const fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Total number of multipliers (constant across the paper's variants).
    #[must_use]
    pub const fn num_multipliers(&self) -> usize {
        self.num_pes() * self.pe.multipliers_per_pe()
    }

    /// Maximum K extent of a tile the array can hold stationary.
    #[must_use]
    pub const fn max_tk(&self) -> usize {
        self.rows * self.pe.multipliers_per_pe()
    }

    /// Maximum N extent of a tile.
    #[must_use]
    pub const fn max_tn(&self) -> usize {
        self.cols
    }

    /// Peak multiply-accumulate throughput per engine cycle.
    #[must_use]
    pub const fn peak_macs_per_cycle(&self) -> usize {
        self.num_multipliers()
    }

    /// Returns a copy with a different control scheme.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::UnsupportedCombination`] when the new scheme
    /// is incompatible with the PE variant.
    pub fn with_control(&self, control: ControlScheme) -> Result<Self, SystolicError> {
        SystolicConfig::new(self.rows, self.cols, self.pe, control, self.clock_ratio)
    }

    /// Returns a copy with a different in-flight limit (at least 1).
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// A short design label such as `RASA-DMDB-WLS` or `BASELINE`.
    #[must_use]
    pub fn label(&self) -> String {
        match (self.pe, self.control) {
            (PeVariant::Baseline, ControlScheme::Base) => "BASELINE".to_string(),
            (PeVariant::Baseline, c) => format!("RASA-{}", c.label()),
            (p, c) => format!("RASA-{}-{}", p.label(), c.label()),
        }
    }
}

impl Default for SystolicConfig {
    fn default() -> Self {
        SystolicConfig::paper_baseline()
    }
}

impl fmt::Display for SystolicConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} {} PEs, {} control, 1:{} clock)",
            self.label(),
            self.rows,
            self.cols,
            self.pe,
            self.control,
            self.clock_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_resources() {
        assert_eq!(PeVariant::Baseline.weight_buffers(), 1);
        assert_eq!(PeVariant::Db.weight_buffers(), 2);
        assert_eq!(PeVariant::Dm.multipliers_per_pe(), 2);
        assert_eq!(PeVariant::Dmdb.multipliers_per_pe(), 2);
        assert_eq!(PeVariant::Dmdb.weight_buffers(), 2);
        assert!(PeVariant::Dm.needs_merge_adder_row());
        assert!(!PeVariant::Db.needs_merge_adder_row());
        assert_eq!(PeVariant::all().len(), 4);
    }

    #[test]
    fn scheme_capabilities() {
        assert!(!ControlScheme::Base.supports_weight_bypass());
        assert!(!ControlScheme::Pipe.supports_weight_bypass());
        assert!(ControlScheme::Wlbp.supports_weight_bypass());
        assert!(ControlScheme::Wls.supports_weight_bypass());
        assert!(ControlScheme::Wls.requires_double_buffering());
        assert!(!ControlScheme::Wlbp.requires_double_buffering());
    }

    #[test]
    fn paper_geometry_keeps_multiplier_count() {
        let base = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap();
        assert_eq!(base.rows(), 32);
        assert_eq!(base.cols(), 16);
        assert_eq!(base.num_multipliers(), 512);
        assert_eq!(base.max_tk(), 32);
        assert_eq!(base.max_tn(), 16);

        let dm = SystolicConfig::paper(PeVariant::Dm, ControlScheme::Pipe).unwrap();
        assert_eq!(dm.rows(), 16);
        assert_eq!(dm.num_pes(), 256);
        assert_eq!(dm.num_multipliers(), 512);
        assert_eq!(dm.max_tk(), 32);
    }

    #[test]
    fn wls_requires_double_buffering() {
        assert!(SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wls).is_err());
        assert!(SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wls).is_err());
        assert!(SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).is_ok());
        assert!(SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).is_ok());
        assert!(!ControlScheme::Wls.is_supported_by(PeVariant::Baseline));
        assert!(!ControlScheme::Wls.is_supported_by(PeVariant::Dm));
        assert!(ControlScheme::Wls.is_supported_by(PeVariant::Db));
        assert!(ControlScheme::Wlbp.is_supported_by(PeVariant::Baseline));
    }

    #[test]
    fn valid_combinations_enumerate_the_fourteen_designs() {
        let combos = SystolicConfig::valid_combinations();
        assert_eq!(combos.len(), 14, "16 raw pairs minus the two invalid WLS");
        assert!(combos
            .iter()
            .all(|(pe, scheme)| scheme.is_supported_by(*pe)));
        // Variant-major presentation order, starting from the baseline.
        assert_eq!(combos[0], (PeVariant::Baseline, ControlScheme::Base));
        assert!(!combos.contains(&(PeVariant::Baseline, ControlScheme::Wls)));
        assert!(!combos.contains(&(PeVariant::Dm, ControlScheme::Wls)));

        // Every materialized combination follows the paper's row
        // convention and keeps the 512-multiplier budget.
        for (pe, scheme) in combos {
            let config = SystolicConfig::paper(pe, scheme).unwrap();
            assert_eq!(config.rows(), SystolicConfig::paper_rows(pe));
            assert_eq!(config.num_multipliers(), 512);
        }
        assert_eq!(SystolicConfig::paper_rows(PeVariant::Baseline), 32);
        assert_eq!(SystolicConfig::paper_rows(PeVariant::Dmdb), 16);
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(SystolicConfig::new(0, 16, PeVariant::Baseline, ControlScheme::Base, 4).is_err());
        assert!(SystolicConfig::new(32, 0, PeVariant::Baseline, ControlScheme::Base, 4).is_err());
        assert!(SystolicConfig::new(32, 16, PeVariant::Baseline, ControlScheme::Base, 0).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(SystolicConfig::paper_baseline().label(), "BASELINE");
        let wlbp = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp).unwrap();
        assert_eq!(wlbp.label(), "RASA-WLBP");
        let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();
        assert_eq!(dmdb.label(), "RASA-DMDB-WLS");
        assert!(dmdb.to_string().contains("16x16"));
    }

    #[test]
    fn with_control_revalidates() {
        let base = SystolicConfig::paper_baseline();
        assert!(base.with_control(ControlScheme::Wls).is_err());
        let piped = base.with_control(ControlScheme::Pipe).unwrap();
        assert_eq!(piped.control(), ControlScheme::Pipe);
        assert_eq!(piped.rows(), base.rows());
    }

    #[test]
    fn default_is_paper_baseline() {
        assert_eq!(SystolicConfig::default(), SystolicConfig::paper_baseline());
    }

    #[test]
    fn in_flight_floor_is_one() {
        let cfg = SystolicConfig::paper_baseline().with_max_in_flight(0);
        assert_eq!(cfg.max_in_flight(), 1);
    }
}
