use std::error::Error;
use std::fmt;

/// Errors produced by the systolic-array engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystolicError {
    /// The array configuration was internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A control scheme was combined with a PE variant that cannot support
    /// it (e.g. Weight Load Skip without double buffering).
    UnsupportedCombination {
        /// The control scheme requested.
        scheme: &'static str,
        /// The PE variant requested.
        variant: &'static str,
        /// Why the combination is impossible.
        reason: String,
    },
    /// A tile did not fit on the configured array.
    TileTooLarge {
        /// Requested tile rows (M).
        tm: usize,
        /// Requested tile depth (K).
        tk: usize,
        /// Requested tile columns (N).
        tn: usize,
        /// Maximum K supported by the array.
        max_tk: usize,
        /// Maximum N supported by the array.
        max_tn: usize,
    },
    /// Operand matrices passed to the functional array had the wrong shape.
    OperandShapeMismatch {
        /// Human-readable description of the shapes involved.
        detail: String,
    },
    /// A request was submitted with a ready time earlier than an already
    /// retired request, violating the in-order submission contract.
    OutOfOrderSubmission {
        /// Sequence number of the offending request.
        sequence: u64,
    },
}

impl fmt::Display for SystolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystolicError::InvalidConfig { reason } => {
                write!(f, "invalid systolic array configuration: {reason}")
            }
            SystolicError::UnsupportedCombination {
                scheme,
                variant,
                reason,
            } => write!(
                f,
                "control scheme {scheme} cannot be used with {variant} PEs: {reason}"
            ),
            SystolicError::TileTooLarge {
                tm,
                tk,
                tn,
                max_tk,
                max_tn,
            } => write!(
                f,
                "tile {tm}x{tk}x{tn} exceeds array capacity (K<={max_tk}, N<={max_tn})"
            ),
            SystolicError::OperandShapeMismatch { detail } => {
                write!(f, "operand shape mismatch: {detail}")
            }
            SystolicError::OutOfOrderSubmission { sequence } => {
                write!(f, "request {sequence} submitted out of order")
            }
        }
    }
}

impl Error for SystolicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SystolicError::TileTooLarge {
            tm: 16,
            tk: 64,
            tn: 16,
            max_tk: 32,
            max_tn: 16,
        };
        assert!(e.to_string().contains("16x64x16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SystolicError>();
    }
}
