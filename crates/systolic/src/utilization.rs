//! Closed-form PE-utilization analysis (Eq. 1 / Eq. 2, Fig. 1 and Fig. 2 of
//! the paper).

use crate::{SystolicConfig, TileDims};

/// One point of a utilization curve: a TM value and the resulting average
/// PE utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationPoint {
    /// The streaming tile dimension TM.
    pub tm: usize,
    /// Average PE utilization in `[0, 1]`.
    pub utilization: f64,
}

/// The number of cycles each MAC unit is inactive during one serialized
/// `rasa_mm` — Eq. 2 of the paper: `T_inactive = L_tot − TM`.
#[must_use]
pub fn fill_drain_inactive_cycles(config: &SystolicConfig, tile: TileDims) -> u64 {
    crate::base_latency(config, tile).saturating_sub(tile.tm as u64)
}

/// Average PE utilization of a single serialized `rasa_mm` mapped on a fully
/// occupied array: each PE computes for TM cycles out of the Eq. 1 total
/// latency, so the average is `TM / L_tot` (28.6 % for the Fig. 1 toy
/// example, and the quantity plotted against TM in Fig. 2).
#[must_use]
pub fn average_utilization(config: &SystolicConfig, tile: TileDims) -> f64 {
    let total = crate::base_latency(config, tile);
    if total == 0 {
        return 0.0;
    }
    // Account for a tile that does not fill the array (mapping inefficiency):
    // only tk×tn of the array's max_tk×max_tn positions hold useful work.
    let mapping = (tile.tk.min(config.max_tk()) * tile.tn.min(config.max_tn())) as f64
        / (config.max_tk() * config.max_tn()) as f64;
    mapping * tile.tm as f64 / total as f64
}

/// Steady-state PE utilization when `rasa_mm` instructions are pipelined
/// back-to-back under a control scheme: `TM / interval`, capped at 1.
///
/// `weight_reuse_fraction` is the fraction of instructions whose weight
/// register is reused with a clear dirty bit (0.5 for the 2×2 register
/// blocking of Algorithm 1).
#[must_use]
pub fn pipelined_utilization(
    config: &SystolicConfig,
    tile: TileDims,
    weight_reuse_fraction: f64,
) -> f64 {
    let reuse = weight_reuse_fraction.clamp(0.0, 1.0);
    let i_reuse = crate::steady_state_interval(config, tile, true) as f64;
    let i_fresh = crate::steady_state_interval(config, tile, false) as f64;
    let interval = reuse * i_reuse + (1.0 - reuse) * i_fresh;
    if interval <= 0.0 {
        return 0.0;
    }
    (tile.tm as f64 / interval).min(1.0)
}

/// The Fig. 2 sweep: average utilization of one serialized instruction as a
/// function of TM, for a square array of dimension `array_dim`
/// (TK = TN = `array_dim`). `tm_values` supplies the X axis.
#[must_use]
pub fn utilization_curve(array_dim: usize, tm_values: &[usize]) -> Vec<UtilizationPoint> {
    tm_values
        .iter()
        .map(|&tm| {
            let total = (2 * array_dim + tm + array_dim - 1) as f64;
            UtilizationPoint {
                tm,
                utilization: tm as f64 / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlScheme, PeVariant};

    fn baseline() -> SystolicConfig {
        SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap()
    }

    #[test]
    fn equation_two_inactive_cycles() {
        let cfg = baseline();
        let tile = TileDims::new(16, 32, 16);
        // L_tot − TM = 95 − 16 = 79.
        assert_eq!(fill_drain_inactive_cycles(&cfg, tile), 79);
    }

    #[test]
    fn fig1_toy_example_utilization() {
        let cfg = SystolicConfig::new(2, 2, PeVariant::Baseline, ControlScheme::Base, 4).unwrap();
        let u = average_utilization(&cfg, TileDims::new(2, 2, 2));
        assert!((u - 2.0 / 7.0).abs() < 1e-9, "expected 28.6 %, got {u}");
    }

    #[test]
    fn paper_tile_utilization_is_low() {
        // The motivating observation: a full register tile only reaches
        // 16/95 ≈ 16.8 % utilization on the serialized baseline.
        let u = average_utilization(&baseline(), TileDims::new(16, 32, 16));
        assert!((u - 16.0 / 95.0).abs() < 1e-9);
    }

    #[test]
    fn mapping_inefficiency_reduces_utilization() {
        let cfg = baseline();
        let full = average_utilization(&cfg, TileDims::new(16, 32, 16));
        let half_mapped = average_utilization(&cfg, TileDims::new(16, 16, 16));
        assert!(half_mapped < full);
    }

    #[test]
    fn utilization_grows_with_tm_and_approaches_one() {
        let curve = utilization_curve(16, &[4, 16, 64, 256, 1024, 16384]);
        assert_eq!(curve.len(), 6);
        for pair in curve.windows(2) {
            assert!(pair[0].utilization < pair[1].utilization);
        }
        assert!(curve.last().unwrap().utilization > 0.99);
        assert!(curve[0].utilization < 0.1);
    }

    #[test]
    fn larger_arrays_need_larger_tm() {
        // Fig. 2: at the same TM, a larger array is less utilized.
        let small = utilization_curve(8, &[64])[0].utilization;
        let large = utilization_curve(128, &[64])[0].utilization;
        assert!(small > large);
    }

    #[test]
    fn pipelined_utilization_ordering() {
        let tile = TileDims::new(16, 32, 16);
        let base = pipelined_utilization(&baseline(), tile, 0.5);
        let pipe = pipelined_utilization(
            &SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Pipe).unwrap(),
            tile,
            0.5,
        );
        let wlbp = pipelined_utilization(
            &SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp).unwrap(),
            tile,
            0.5,
        );
        let wls = pipelined_utilization(
            &SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap(),
            tile,
            0.5,
        );
        assert!(base < pipe);
        assert!(pipe < wlbp);
        assert!(wlbp < wls);
        assert!(wls <= 1.0);
    }

    #[test]
    fn reuse_fraction_is_clamped() {
        let tile = TileDims::new(16, 32, 16);
        let cfg = SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Wlbp).unwrap();
        let lo = pipelined_utilization(&cfg, tile, -3.0);
        let hi = pipelined_utilization(&cfg, tile, 7.0);
        assert!((lo - 16.0 / 79.0).abs() < 1e-9);
        assert!((hi - 1.0).abs() < 1e-9);
    }
}
