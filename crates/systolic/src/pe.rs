use crate::{PeVariant, SystolicError};

/// The registered outputs of a PE that its east and south neighbours observe
/// one cycle later.
///
/// Double-multiplier PEs forward a pair of A operands east and keep two
/// partial-sum chains flowing south (merged by the adder row at the bottom
/// of the array); single-multiplier PEs only use lane 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeState {
    /// A operand(s) forwarded to the east neighbour.
    pub a_out: [f32; 2],
    /// Whether `a_out` carries a live operand this cycle.
    pub a_valid: bool,
    /// Partial sum(s) forwarded to the south neighbour.
    pub psum_out: [f32; 2],
    /// Whether `psum_out` carries a live partial sum this cycle.
    pub psum_valid: bool,
}

/// A single processing element of the weight-stationary array.
///
/// The PE mirrors the micro-architecture sketched in Fig. 4(c): a stationary
/// weight buffer (two of them for the double-buffered variants), one or two
/// BF16 multipliers and FP32 adders, and the pipeline registers that forward
/// the A operand east and the partial sum south.
///
/// The functional array in [`crate::FunctionalArray`] owns a grid of `Pe`s
/// and steps them cycle by cycle; the PE itself is deliberately unaware of
/// its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Pe {
    variant: PeVariant,
    weights: [f32; 2],
    weights_valid: bool,
    shadow: [f32; 2],
    shadow_valid: bool,
    state: PeState,
}

impl Pe {
    /// Creates an idle PE of the given variant.
    #[must_use]
    pub fn new(variant: PeVariant) -> Self {
        Pe {
            variant,
            weights: [0.0; 2],
            weights_valid: false,
            shadow: [0.0; 2],
            shadow_valid: false,
            state: PeState::default(),
        }
    }

    /// The PE variant.
    #[must_use]
    pub const fn variant(&self) -> PeVariant {
        self.variant
    }

    /// The currently registered outputs (visible to neighbours next cycle).
    #[must_use]
    pub const fn state(&self) -> &PeState {
        &self.state
    }

    /// The active (stationary) weights.
    #[must_use]
    pub const fn weights(&self) -> [f32; 2] {
        self.weights
    }

    /// Whether active weights have been installed.
    #[must_use]
    pub const fn has_weights(&self) -> bool {
        self.weights_valid
    }

    /// Whether the shadow buffer currently holds prefetched weights.
    #[must_use]
    pub const fn has_shadow(&self) -> bool {
        self.shadow_valid
    }

    /// Installs active weights directly (used by the weight-load shift chain
    /// when the wavefront reaches this PE's row).
    pub fn set_weights(&mut self, weights: [f32; 2]) {
        self.weights = weights;
        self.weights_valid = true;
    }

    /// Stores weights into the shadow buffer (RASA-DB / RASA-DMDB only).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::UnsupportedCombination`] when the variant has
    /// no second weight buffer.
    pub fn set_shadow(&mut self, weights: [f32; 2]) -> Result<(), SystolicError> {
        if !self.variant.has_double_buffering() {
            return Err(SystolicError::UnsupportedCombination {
                scheme: "WLS",
                variant: self.variant.label(),
                reason: "this PE has a single weight buffer".to_string(),
            });
        }
        self.shadow = weights;
        self.shadow_valid = true;
        Ok(())
    }

    /// Swaps the shadow buffer into the active weight plane.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] when no shadow weights have
    /// been loaded, and [`SystolicError::UnsupportedCombination`] when the
    /// variant has no second buffer.
    pub fn swap_shadow(&mut self) -> Result<(), SystolicError> {
        if !self.variant.has_double_buffering() {
            return Err(SystolicError::UnsupportedCombination {
                scheme: "WLS",
                variant: self.variant.label(),
                reason: "this PE has a single weight buffer".to_string(),
            });
        }
        if !self.shadow_valid {
            return Err(SystolicError::InvalidConfig {
                reason: "shadow swap requested before any shadow weight load".to_string(),
            });
        }
        self.weights = self.shadow;
        self.weights_valid = true;
        self.shadow_valid = false;
        Ok(())
    }

    /// Clears the pipeline registers (forwarded A operand and partial sum)
    /// while keeping the stationary and shadow weights resident, as happens
    /// between back-to-back instructions on real hardware.
    pub fn clear_pipeline(&mut self) {
        self.state = PeState::default();
    }

    /// Clears all weight and pipeline state.
    pub fn reset(&mut self) {
        self.weights = [0.0; 2];
        self.weights_valid = false;
        self.shadow = [0.0; 2];
        self.shadow_valid = false;
        self.state = PeState::default();
    }

    /// Executes one cycle: consumes the A operand arriving from the west and
    /// the partial sum arriving from the north, performs the multiply-
    /// accumulate(s) and registers the forwarded values.
    ///
    /// Returns the number of multiply-accumulate operations performed this
    /// cycle (0 when the A input was not valid), which the array uses for
    /// the per-cycle utilization counts of Fig. 1 / Fig. 2.
    pub fn step(&mut self, a_in: ([f32; 2], bool), psum_in: ([f32; 2], bool)) -> usize {
        let (a, a_valid) = a_in;
        let (psum, psum_valid) = psum_in;
        if !a_valid {
            // Nothing to compute; pass any incoming partial sum through so a
            // draining wavefront is never blocked.
            self.state = PeState {
                a_out: [0.0; 2],
                a_valid: false,
                psum_out: psum,
                psum_valid,
            };
            return 0;
        }
        let lanes = self.variant.multipliers_per_pe();
        let base = if psum_valid { psum } else { [0.0; 2] };
        let mut out = [0.0; 2];
        for lane in 0..lanes {
            out[lane] = base[lane] + a[lane] * self.weights[lane];
        }
        // A single-multiplier PE keeps the second chain untouched.
        if lanes == 1 {
            out[1] = base[1];
        }
        self.state = PeState {
            a_out: a,
            a_valid: true,
            psum_out: out,
            psum_valid: true,
        };
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pe_single_lane_mac() {
        let mut pe = Pe::new(PeVariant::Baseline);
        pe.set_weights([3.0, 99.0]);
        assert!(pe.has_weights());
        let macs = pe.step(([2.0, 7.0], true), ([10.0, 5.0], true));
        assert_eq!(macs, 1);
        assert_eq!(pe.state().psum_out[0], 16.0);
        // Lane 1 passes through untouched for single-multiplier PEs.
        assert_eq!(pe.state().psum_out[1], 5.0);
        assert_eq!(pe.state().a_out, [2.0, 7.0]);
        assert!(pe.state().a_valid);
    }

    #[test]
    fn dm_pe_two_lane_mac() {
        let mut pe = Pe::new(PeVariant::Dm);
        pe.set_weights([3.0, 4.0]);
        let macs = pe.step(([2.0, 5.0], true), ([1.0, 1.0], true));
        assert_eq!(macs, 2);
        assert_eq!(pe.state().psum_out, [7.0, 21.0]);
    }

    #[test]
    fn invalid_a_passes_psum_through() {
        let mut pe = Pe::new(PeVariant::Baseline);
        pe.set_weights([3.0, 0.0]);
        let macs = pe.step(([0.0, 0.0], false), ([42.0, 7.0], true));
        assert_eq!(macs, 0);
        assert!(!pe.state().a_valid);
        assert!(pe.state().psum_valid);
        assert_eq!(pe.state().psum_out[0], 42.0);
    }

    #[test]
    fn missing_psum_starts_from_zero() {
        let mut pe = Pe::new(PeVariant::Baseline);
        pe.set_weights([2.0, 0.0]);
        pe.step(([3.0, 0.0], true), ([0.0, 0.0], false));
        assert_eq!(pe.state().psum_out[0], 6.0);
    }

    #[test]
    fn shadow_buffer_requires_db_variant() {
        let mut pe = Pe::new(PeVariant::Baseline);
        assert!(pe.set_shadow([1.0, 2.0]).is_err());
        assert!(pe.swap_shadow().is_err());

        let mut db = Pe::new(PeVariant::Db);
        assert!(db.set_shadow([1.0, 2.0]).is_ok());
        assert!(db.has_shadow());
        db.swap_shadow().unwrap();
        assert_eq!(db.weights(), [1.0, 2.0]);
        assert!(!db.has_shadow());
        // A second swap without a reload is rejected.
        assert!(db.swap_shadow().is_err());
    }

    #[test]
    fn dmdb_has_both_features() {
        let mut pe = Pe::new(PeVariant::Dmdb);
        pe.set_shadow([1.5, 2.5]).unwrap();
        pe.swap_shadow().unwrap();
        let macs = pe.step(([2.0, 2.0], true), ([0.0, 0.0], true));
        assert_eq!(macs, 2);
        assert_eq!(pe.state().psum_out, [3.0, 5.0]);
    }

    #[test]
    fn clear_pipeline_keeps_weights() {
        let mut pe = Pe::new(PeVariant::Db);
        pe.set_weights([2.0, 0.0]);
        pe.set_shadow([3.0, 0.0]).unwrap();
        pe.step(([1.0, 0.0], true), ([0.0, 0.0], true));
        assert!(pe.state().a_valid);
        pe.clear_pipeline();
        assert_eq!(pe.state(), &PeState::default());
        assert!(pe.has_weights());
        assert!(pe.has_shadow());
        assert_eq!(pe.weights(), [2.0, 0.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pe = Pe::new(PeVariant::Db);
        pe.set_weights([1.0, 1.0]);
        pe.set_shadow([2.0, 2.0]).unwrap();
        pe.step(([1.0, 1.0], true), ([0.0, 0.0], true));
        pe.reset();
        assert!(!pe.has_weights());
        assert!(!pe.has_shadow());
        assert_eq!(pe.state(), &PeState::default());
    }
}
