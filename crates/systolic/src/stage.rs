use std::fmt;

/// The four execution sub-stages of a `rasa_mm` on the WS systolic array
/// (§IV-B, Fig. 4(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubStage {
    /// Weight Load — the stationary B tile streams from the top edge down
    /// to its rows.
    WeightLoad,
    /// Feed First — A and C elements for the *first* array row are fed from
    /// the west/north edges.
    FeedFirst,
    /// Feed Second — the remaining (skewed) rows finish being fed; top-left
    /// PEs progressively go idle.
    FeedSecond,
    /// Drain — remaining partial sums propagate south and the last outputs
    /// are ejected.
    Drain,
}

impl SubStage {
    /// All sub-stages in execution order.
    #[must_use]
    pub const fn all() -> [SubStage; 4] {
        [
            SubStage::WeightLoad,
            SubStage::FeedFirst,
            SubStage::FeedSecond,
            SubStage::Drain,
        ]
    }

    /// The two-letter abbreviation used in the paper's pipeline diagrams.
    #[must_use]
    pub const fn abbrev(self) -> &'static str {
        match self {
            SubStage::WeightLoad => "WL",
            SubStage::FeedFirst => "FF",
            SubStage::FeedSecond => "FS",
            SubStage::Drain => "DR",
        }
    }
}

impl fmt::Display for SubStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

/// A half-open interval `[start, end)` of engine cycles occupied by one
/// sub-stage. A zero-length window (`start == end`) denotes a skipped stage
/// (e.g. Weight Load under a successful bypass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StageWindow {
    /// First cycle of the stage.
    pub start: u64,
    /// One past the last cycle of the stage.
    pub end: u64,
}

impl StageWindow {
    /// Creates a window from a start cycle and a duration.
    #[must_use]
    pub const fn new(start: u64, duration: u64) -> Self {
        StageWindow {
            start,
            end: start + duration,
        }
    }

    /// An empty (skipped) window anchored at `at`.
    #[must_use]
    pub const fn skipped(at: u64) -> Self {
        StageWindow { start: at, end: at }
    }

    /// Duration in cycles.
    #[must_use]
    pub const fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the stage was skipped.
    #[must_use]
    pub const fn is_skipped(&self) -> bool {
        self.start == self.end
    }

    /// Whether this window overlaps another (shares at least one cycle).
    #[must_use]
    pub const fn overlaps(&self, other: &StageWindow) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The same window displaced `by` engine cycles later. A skipped window
    /// stays skipped (both endpoints move together).
    #[must_use]
    pub const fn shifted(self, by: u64) -> Self {
        StageWindow {
            start: self.start + by,
            end: self.end + by,
        }
    }
}

impl fmt::Display for StageWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_skipped() {
            write!(f, "[skipped@{}]", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

/// Closed-form durations of the four sub-stages for one tile on a given
/// array configuration (see [`crate::stage_durations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageDurations {
    /// Weight Load cycles.
    pub wl: u64,
    /// Feed First cycles.
    pub ff: u64,
    /// Feed Second cycles.
    pub fs: u64,
    /// Drain cycles.
    pub dr: u64,
}

impl StageDurations {
    /// Total serialized latency (the Eq. 1 `L_tot` when no stages overlap).
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.wl + self.ff + self.fs + self.dr
    }

    /// Duration of a single sub-stage.
    #[must_use]
    pub const fn of(&self, stage: SubStage) -> u64 {
        match stage {
            SubStage::WeightLoad => self.wl,
            SubStage::FeedFirst => self.ff,
            SubStage::FeedSecond => self.fs,
            SubStage::Drain => self.dr,
        }
    }
}

/// The resolved schedule of one `rasa_mm` instruction: a window per
/// sub-stage plus bookkeeping about how the control scheme treated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulTiming {
    /// Sequence number of the instruction within the engine (issue order).
    pub sequence: u64,
    /// Weight Load window (skipped under a successful weight bypass).
    pub wl: StageWindow,
    /// Feed First window.
    pub ff: StageWindow,
    /// Feed Second window.
    pub fs: StageWindow,
    /// Drain window.
    pub dr: StageWindow,
    /// Whether Weight Load was skipped because the weight register was
    /// reused with a clear dirty bit (RASA-WLBP / RASA-WLS).
    pub weight_bypassed: bool,
    /// Whether Weight Load was hidden behind the previous instruction via a
    /// shadow-buffer prefetch (RASA-WLS with a weight change).
    pub weight_prefetched: bool,
}

impl MatmulTiming {
    /// The cycle at which the instruction's results are fully drained and
    /// its destination tile register is architecturally complete.
    #[must_use]
    pub const fn complete_cycle(&self) -> u64 {
        self.dr.end
    }

    /// The first cycle at which the instruction occupies any array resource.
    #[must_use]
    pub const fn start_cycle(&self) -> u64 {
        if self.wl.is_skipped() {
            self.ff.start
        } else {
            self.wl.start
        }
    }

    /// End-to-end latency of this instruction (occupancy, not issue
    /// interval).
    #[must_use]
    pub const fn latency(&self) -> u64 {
        self.complete_cycle() - self.start_cycle()
    }

    /// The same schedule displaced `cycles` engine cycles and `sequences`
    /// issue slots later — the timing a perfectly periodic execution would
    /// assign to the corresponding instruction one period on.
    #[must_use]
    pub const fn shifted(self, cycles: u64, sequences: u64) -> Self {
        MatmulTiming {
            sequence: self.sequence + sequences,
            wl: self.wl.shifted(cycles),
            ff: self.ff.shifted(cycles),
            fs: self.fs.shifted(cycles),
            dr: self.dr.shifted(cycles),
            weight_bypassed: self.weight_bypassed,
            weight_prefetched: self.weight_prefetched,
        }
    }

    /// Window of a given sub-stage.
    #[must_use]
    pub const fn window(&self, stage: SubStage) -> StageWindow {
        match stage {
            SubStage::WeightLoad => self.wl,
            SubStage::FeedFirst => self.ff,
            SubStage::FeedSecond => self.fs,
            SubStage::Drain => self.dr,
        }
    }
}

impl fmt::Display for MatmulTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mm#{}: WL{} FF{} FS{} DR{}{}",
            self.sequence,
            self.wl,
            self.ff,
            self.fs,
            self.dr,
            if self.weight_bypassed {
                " (bypass)"
            } else if self.weight_prefetched {
                " (prefetch)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substage_order_and_abbreviations() {
        let all = SubStage::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].abbrev(), "WL");
        assert_eq!(all[3].abbrev(), "DR");
        assert!(SubStage::WeightLoad < SubStage::Drain);
        assert_eq!(SubStage::FeedFirst.to_string(), "FF");
    }

    #[test]
    fn window_arithmetic() {
        let w = StageWindow::new(10, 5);
        assert_eq!(w.duration(), 5);
        assert!(!w.is_skipped());
        let s = StageWindow::skipped(7);
        assert!(s.is_skipped());
        assert_eq!(s.duration(), 0);
        assert_eq!(w.to_string(), "[10, 15)");
        assert!(s.to_string().contains("skipped"));
    }

    #[test]
    fn window_overlap() {
        let a = StageWindow::new(0, 10);
        let b = StageWindow::new(9, 5);
        let c = StageWindow::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn durations_total_and_lookup() {
        let d = StageDurations {
            wl: 32,
            ff: 16,
            fs: 31,
            dr: 16,
        };
        assert_eq!(d.total(), 95);
        assert_eq!(d.of(SubStage::WeightLoad), 32);
        assert_eq!(d.of(SubStage::Drain), 16);
    }

    #[test]
    fn timing_accessors() {
        let t = MatmulTiming {
            sequence: 3,
            wl: StageWindow::new(0, 32),
            ff: StageWindow::new(32, 16),
            fs: StageWindow::new(48, 31),
            dr: StageWindow::new(79, 16),
            weight_bypassed: false,
            weight_prefetched: false,
        };
        assert_eq!(t.complete_cycle(), 95);
        assert_eq!(t.start_cycle(), 0);
        assert_eq!(t.latency(), 95);
        assert_eq!(t.window(SubStage::FeedSecond).duration(), 31);
        assert!(t.to_string().contains("mm#3"));
    }

    #[test]
    fn bypassed_timing_starts_at_feed() {
        let t = MatmulTiming {
            sequence: 4,
            wl: StageWindow::skipped(100),
            ff: StageWindow::new(100, 16),
            fs: StageWindow::new(116, 31),
            dr: StageWindow::new(147, 16),
            weight_bypassed: true,
            weight_prefetched: false,
        };
        assert_eq!(t.start_cycle(), 100);
        assert_eq!(t.latency(), 63);
        assert!(t.to_string().contains("bypass"));
    }
}
