//! # rasa — Register-Aware Systolic Array matrix engine for CPUs
//!
//! This is the facade crate of the RASA reproduction workspace (DAC 2021,
//! "RASA: Efficient Register-Aware Systolic Array Matrix Engine for CPU").
//! It re-exports every sub-crate under a stable module path so that examples
//! and downstream users only need a single dependency:
//!
//! * [`isa`] — tile registers and the `rasa_tl`/`rasa_ts`/`rasa_mm` ISA;
//! * [`numeric`] — BF16/FP32 arithmetic, matrices, reference GEMM, im2col;
//! * [`systolic`] — the systolic-array matrix engine (functional + timing);
//! * [`cpu`] — the trace-driven out-of-order core hosting the engine;
//! * [`trace`] — AMX-style kernel/trace generation for GEMMs and convs;
//! * [`workloads`] — the MLPerf-derived layers of Table I;
//! * [`power`] — the analytical area/energy model;
//! * [`sim`] — end-to-end simulation, design points and experiment runners.
//!
//! ## Quickstart
//!
//! ```
//! use rasa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate a small GEMM on the baseline design and on RASA-DMDB-WLS.
//! let gemm = GemmShape::new(256, 256, 256);
//! let baseline = Simulator::new(DesignPoint::baseline())?.run_gemm(gemm)?;
//! let rasa = Simulator::new(DesignPoint::rasa_dmdb_wls())?.run_gemm(gemm)?;
//! assert!(rasa.core_cycles < baseline.core_cycles);
//! # Ok(())
//! # }
//! ```

pub use rasa_cpu as cpu;
pub use rasa_isa as isa;
pub use rasa_numeric as numeric;
pub use rasa_power as power;
pub use rasa_sim as sim;
pub use rasa_systolic as systolic;
pub use rasa_trace as trace;
pub use rasa_workloads as workloads;

/// Commonly used types, re-exported for one-line imports in examples and
/// downstream code.
pub mod prelude {
    pub use rasa_cpu::{CoreRun, CpuConfig, CpuCore, CpuStats, StreamStats};
    pub use rasa_isa::{
        Instruction, IsaConfig, MemRef, Program, ProgramBuilder, ProgramSegment, TileReg,
    };
    pub use rasa_numeric::{gemm_bf16_fp32, gemm_f32, Bf16, ConvShape, GemmShape, Matrix};
    pub use rasa_power::{AreaModel, EnergyModel, PowerReport};
    pub use rasa_sim::net::{NetClient, Router, RouterConfig, ShardServer, WireRequest};
    pub use rasa_sim::search::{
        DesignSearch, Evolutionary, ExhaustiveGrid, ParetoFrontier, RandomSampling, SearchOutcome,
        SearchSpace, SearchStrategy,
    };
    pub use rasa_sim::serve::{GemmRequest, GemmResponse, GemmServer, ServeConfig};
    pub use rasa_sim::{
        CacheStats, DesignPoint, ExperimentRunner, ExperimentRunnerBuilder, ExperimentSpec,
        ExperimentSuite, ExperimentSuiteBuilder, FromJson, JsonValue, PipelineStats, SimJob,
        SimReport, SimSummary, Simulator, ToJson, WorkloadRun,
    };
    pub use rasa_systolic::{
        ControlScheme, FunctionalArray, MatrixEngine, PeVariant, SystolicConfig, TileDims,
    };
    pub use rasa_trace::{GemmKernelConfig, GemmTraceStream, ProgramSource, TraceGenerator};
    pub use rasa_workloads::{LayerSpec, MlperfWorkload, WorkloadSuite};
}
