//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `rand` API it actually uses: a
//! deterministic, seedable RNG ([`rngs::StdRng`]) and uniform sampling from
//! ranges via [`Rng::gen_range`]. The generator is xoshiro256** seeded
//! through SplitMix64 — statistically solid for tests and examples, not
//! cryptographic.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution (used by [`Rng::gen`]).
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A range a value of type `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64());
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256** with SplitMix64
    /// seeding. Mirrors the `rand::rngs::StdRng` name so call sites read
    /// identically to the real crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-8i32..8);
            assert!((-8..8).contains(&x));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn values_spread_across_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let b: bool = rng.gen();
        let _ = b;
    }
}
