//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! provides the `Serialize` / `Deserialize` marker traits and derive macros
//! so that types can declare their serializability (and downstream code can
//! bound on it) without pulling in the real serialization machinery. Actual
//! wire formats in this workspace are hand-rolled (see the CSV/JSON export
//! paths in `rasa-sim` and `rasa-bench`), so the traits carry no methods.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// Derivable via `#[derive(Serialize)]`; carries no methods in the stub.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data.
///
/// Derivable via `#[derive(Deserialize)]`; carries no methods in the stub.
pub trait Deserialize<'de>: Sized {}

/// Deserializer-side helper traits.
pub mod de {
    /// Marker for types deserializable from any lifetime (owned data).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}
