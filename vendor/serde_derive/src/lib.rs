//! No-op `Serialize` / `Deserialize` derives for the vendored serde stub.
//!
//! The derives emit empty marker-trait impls for the annotated type. Only
//! non-generic structs and enums are supported — which covers every derive
//! site in this workspace; a generic type will fail to compile with a clear
//! "missing generics" error rather than silently misbehave.

#![deny(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first `struct` or `enum` keyword,
/// skipping attributes and the visibility qualifier.
fn type_name(input: &TokenStream) -> String {
    let mut saw_type_keyword = false;
    for tree in input.clone() {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_type_keyword {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_type_keyword = true;
            }
        }
    }
    panic!("serde stub derive: expected a struct or enum definition");
}

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
