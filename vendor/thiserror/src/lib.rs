//! Offline placeholder for the `thiserror` crate.
//!
//! The workspace's error enums hand-roll their `Display` / `Error` impls,
//! so nothing currently consumes this crate; it exists so the workspace
//! dependency table has a resolvable entry to migrate to once a registry
//! mirror is reachable (swap the `path` for a version requirement and the
//! hand-rolled impls for `#[derive(Error)]`).

#![deny(missing_docs)]
