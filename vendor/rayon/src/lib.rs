//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the small parallel-iterator subset the workspace uses:
//! `slice.par_iter().map(f).collect()` into `Vec<R>` or
//! `Result<Vec<R>, E>`, plus `current_num_threads`. Work is distributed
//! over `std::thread::scope` threads via an atomic index (dynamic
//! work-stealing-ish scheduling: threads grab the next unclaimed item), so
//! uneven per-item costs still balance well. Results are returned in input
//! order regardless of completion order.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// The number of worker threads a parallel iterator will use.
#[must_use]
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The glob-imported prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelVec, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParIterMut,
        ParMap,
    };
}

/// Types whose references can be iterated in parallel (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the iterator.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Types whose elements can be mutated in parallel (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded by the iterator.
    type Item: Send + 'a;

    /// Returns a parallel iterator over mutable references to the elements.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// A parallel iterator over mutable slice elements.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let unit: Result<(), std::convert::Infallible> = self.try_for_each(|item| {
            f(item);
            Ok(())
        });
        unit.expect("infallible closure failed");
    }

    /// Runs `f` on every element in parallel, stopping at the first error.
    ///
    /// Like rayon, completion of other in-flight elements is not
    /// interrupted; unlike rayon's nondeterministic choice, the error for
    /// the lowest-index failing element is returned, so callers see a
    /// deterministic outcome.
    pub fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(&mut T) -> Result<(), E> + Sync,
    {
        let n = self.items.len();
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            for item in self.items.iter_mut() {
                f(item)?;
            }
            return Ok(());
        }

        // Threads claim indices through a shared atomic cursor; every index
        // is claimed exactly once, so the unsafe pointer offsets hand out
        // disjoint `&mut` borrows.
        struct SyncPtr<T>(*mut T);
        unsafe impl<T: Send> Sync for SyncPtr<T> {}
        let base = SyncPtr(self.items.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let failures: Vec<Option<(usize, E)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let base = &base;
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let mut first_failure: Option<(usize, E)> = None;
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let item = unsafe { &mut *base.0.add(index) };
                            if let Err(error) = f(item) {
                                first_failure = Some((index, error));
                                break;
                            }
                        }
                        first_failure
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        match failures
            .into_iter()
            .flatten()
            .min_by_key(|(index, _)| *index)
        {
            Some((_, error)) => Err(error),
            None => Ok(()),
        }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (executed in parallel on `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map in parallel and gathers the results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        C::from_vec(parallel_map(self.items, &self.f))
    }
}

/// Conversion from an in-order result vector, mirroring rayon's
/// `FromParallelIterator` for the collection shapes the workspace uses.
pub trait FromParallelVec<R>: Sized {
    /// Builds the collection from the in-order mapped results.
    fn from_vec(results: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_vec(results: Vec<R>) -> Self {
        results
    }
}

impl<R, E> FromParallelVec<Result<R, E>> for Result<Vec<R>, E> {
    fn from_vec(results: Vec<Result<R, E>>) -> Self {
        results.into_iter().collect()
    }
}

/// Maps `f` over `items` on all available cores, returning results in input
/// order. Threads claim items through a shared atomic cursor, so uneven
/// per-item costs balance dynamically.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    let mut ordered: Vec<(usize, R)> = buckets.drain(..).flatten().collect();
    ordered.sort_by_key(|(index, _)| *index);
    ordered.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 1000);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn collects_results_short_circuit_style() {
        let items: Vec<u32> = (0..100).collect();
        let ok: Result<Vec<u32>, String> = items.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u32>, String> = items
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
