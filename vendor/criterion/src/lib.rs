//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with
//! a plain wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark prints `name: median µs/iter over N samples`.

#![deny(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for `function_name` with a parameter rendered via `Display`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let mut timings = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            timings.push(start.elapsed().as_secs_f64() * 1e6);
        }
        self.timings = timings;
    }
}

fn run_one<R>(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher) -> R) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    let mut timings = bencher.timings;
    if timings.is_empty() {
        return;
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = timings[timings.len() / 2];
    println!(
        "{label}: {median:.1} µs/iter (median of {} samples)",
        timings.len()
    );
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<R>(&mut self, name: &str, f: impl FnMut(&mut Bencher) -> R) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<R>(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (a no-op in the stub; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_function("noop2", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
