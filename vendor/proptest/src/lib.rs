//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: [`Strategy`] with `prop_map`, ranges / tuples / `Just` / `any` /
//! `collection::vec` strategies, the [`proptest!`] macro (with optional
//! `#![proptest_config]`), `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are sampled from a seed derived
//! from the test name (deterministic across runs), and failing inputs are
//! **not shrunk** — the panic message simply reports the case number.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one named property test.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values of an output type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// sampling function.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary {
    /// Samples an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for a type (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A vector length specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy generating vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` samples with a length drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Panic payload used by [`prop_assume!`] to mark a rejected (skipped) case;
/// the [`proptest!`] harness recognizes it and moves on to the next case.
#[derive(Debug, Clone, Copy)]
pub struct AssumeRejected;

/// Runs one property as a loop of sampled cases. Used via [`proptest!`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                        $body
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<$crate::AssumeRejected>().is_some() {
                            continue; // prop_assume! rejected the case
                        }
                        eprintln!(
                            "proptest stub: property {} failed on case {}/{} (no shrinking)",
                            stringify!($name),
                            case + 1,
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::AssumeRejected);
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_sample_in_bounds() {
        let mut rng = crate::rng_for("stub_selftest");
        let strat = (0u8..4, crate::collection::vec(-1.0f32..1.0, 3usize));
        for _ in 0..200 {
            let (byte, floats) = Strategy::sample(&strat, &mut rng);
            assert!(byte < 4);
            assert_eq!(floats.len(), 3);
            assert!(floats.iter().all(|f| (-1.0..1.0).contains(f)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::rng_for("stub_selftest_2");
        let strat: crate::Union<u32> =
            prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)];
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v == 1 || v == 2 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip as usize * 100 + x < 110, true);
        }
    }
}
