//! Recommendation / NLP fully-connected layers and the batch-size study.
//!
//! Simulates the DLRM and BERT FC layers of Table I on RASA-DMDB-WLS, then
//! sweeps the batch size of one DLRM layer to show the Fig. 7 behaviour:
//! batches below the 16-row tile granularity all cost the same, and large
//! batches approach the 16/95 ≈ 0.168 perfect-pipelining asymptote.
//!
//! Run with: `cargo run --release --example mlp_recommender`

use rasa::prelude::*;
use rasa::workloads::{batch_sweep, bert_layers, dlrm_layers};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let baseline_sim = Simulator::new(DesignPoint::baseline())?.with_matmul_cap(Some(2048))?;
    let rasa_sim = Simulator::new(DesignPoint::rasa_dmdb_wls())?.with_matmul_cap(Some(2048))?;

    println!("DLRM / BERT fully-connected layers, RASA-DMDB-WLS vs baseline:");
    let mut layers = dlrm_layers();
    layers.extend(bert_layers());
    for layer in &layers {
        let base = baseline_sim.run_layer(layer)?;
        let rasa = rasa_sim.run_layer(layer)?;
        println!(
            "  {:<8} {:>11} -> {:>11} core cycles  (normalized {:.3}, bypass rate {:.0}%)",
            layer.name(),
            base.core_cycles,
            rasa.core_cycles,
            rasa.normalized_runtime_vs(&base),
            rasa.cpu.engine.bypass_rate() * 100.0
        );
    }

    println!();
    println!("Batch-size sensitivity of DLRM-1 (Fig. 7 behaviour):");
    let dlrm1 = &dlrm_layers()[0];
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    println!("  {:>8} {:>12} {:>12}", "batch", "normalized", "asymptote");
    for swept in batch_sweep(dlrm1, &batches) {
        let base = baseline_sim.run_layer(&swept)?;
        let rasa = rasa_sim.run_layer(&swept)?;
        println!(
            "  {:>8} {:>12.3} {:>12.3}",
            swept.batch(),
            rasa.normalized_runtime_vs(&base),
            16.0 / 95.0
        );
    }
    Ok(())
}
