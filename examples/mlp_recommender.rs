//! Recommendation / NLP fully-connected layers and the batch-size study.
//!
//! Simulates the DLRM and BERT FC layers of Table I on RASA-DMDB-WLS, then
//! sweeps the batch size of one DLRM layer to show the Fig. 7 behaviour:
//! batches below the 16-row tile granularity all cost the same, and large
//! batches approach the 16/95 ≈ 0.168 perfect-pipelining asymptote.
//!
//! Both tables run through one memoizing [`ExperimentRunner`], so the whole
//! example is two parallel grid calls rather than a dozen serial
//! simulations.
//!
//! Run with: `cargo run --release --example mlp_recommender`

use rasa::prelude::*;
use rasa::workloads::{bert_layers, dlrm_layers, BatchMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = ExperimentRunner::builder()
        .with_matmul_cap(Some(2048))
        .build()?;
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];

    println!("DLRM / BERT fully-connected layers, RASA-DMDB-WLS vs baseline:");
    let mut layers = dlrm_layers();
    layers.extend(bert_layers());
    for run in runner.run_grid(&layers, &designs)? {
        let base = run.baseline().expect("baseline leads the design list");
        let rasa = &run.reports[1];
        println!(
            "  {:<8} {:>11} -> {:>11} core cycles  (normalized {:.3}, bypass rate {:.0}%)",
            run.workload,
            base.core_cycles,
            rasa.core_cycles,
            rasa.normalized_runtime_vs(base),
            rasa.cpu.engine.bypass_rate() * 100.0
        );
    }

    println!();
    println!("Batch-size sensitivity of DLRM-1 (Fig. 7 behaviour):");
    let dlrm1 = [dlrm_layers()[0].clone()];
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let swept: Vec<_> = BatchMatrix::new(&dlrm1, &batches).collect();
    println!("  {:>8} {:>12} {:>12}", "batch", "normalized", "asymptote");
    for (run, layer) in runner.run_grid(&swept, &designs)?.iter().zip(&swept) {
        let base = run.baseline().expect("baseline leads the design list");
        println!(
            "  {:>8} {:>12.3} {:>12.3}",
            layer.batch(),
            run.reports[1].normalized_runtime_vs(base),
            16.0 / 95.0
        );
    }
    Ok(())
}
