//! Design-space exploration through the `rasa_sim::search` subsystem.
//!
//! The paper evaluates eight hand-picked design points; this example runs
//! the automated search instead. First the exhaustive grid over the
//! paper's own space (every valid PE variant × control scheme at the
//! evaluated geometry) rediscovers the paper's best designs as the Pareto
//! frontier over (normalized runtime, area, energy); then a seeded
//! evolutionary search over the wider explorer space (more geometries,
//! shallow/deep in-flight windows) finds the same frontier with a fraction
//! of the evaluations, courtesy of the memoizing `ExperimentRunner`.
//!
//! Run with: `cargo run --release --example design_space`

use rasa::prelude::*;
use rasa::sim::search::{DesignSearch, Evolutionary, ExhaustiveGrid, SearchSpace};
use rasa::workloads::bert_layers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = bert_layers()[0].clone();
    let runner = ExperimentRunner::builder()
        .with_matmul_cap(Some(1536))
        .build()?;

    // Ground truth: every valid candidate of the paper's space.
    let grid_search = DesignSearch::new(&runner, SearchSpace::paper(), layer.clone());
    println!(
        "exhaustive grid over the paper space ({}) on {layer}:",
        grid_search.space()
    );
    let grid = grid_search.run(&ExhaustiveGrid)?;
    println!("{grid}");

    // Seeded evolutionary search over the wider explorer space: same
    // frontier shape, discovered through sampling. The runner's cell cache
    // carries every already-simulated design over from the grid above.
    let space = SearchSpace::explorer();
    let evolve = Evolutionary::new(10, 6, 42);
    println!(
        "evolutionary search over the explorer space ({space}), population {}, {} generations, seed {}:",
        evolve.population, evolve.generations, evolve.seed
    );
    let outcome = DesignSearch::new(&runner, space, layer).run(&evolve)?;
    println!("{outcome}");

    let stats = runner.cache_stats();
    println!(
        "{} cells simulated in total, {} evaluations served from the cell cache ({:.0}% hit rate)",
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0
    );
    println!();
    println!("(norm = runtime normalized to BASELINE; the frontier keeps every");
    println!(" non-dominated (norm, area, energy) trade-off; same seed => same result)");
    Ok(())
}
