//! Design-space exploration: every PE variant × control scheme combination.
//!
//! The paper evaluates eight named design points; this example sweeps the
//! full (valid) cross product on one BERT layer and reports runtime, area,
//! performance per area and energy efficiency — the kind of exploration the
//! public API is meant to support beyond the paper's own figures.
//!
//! The whole sweep is one [`ExperimentRunner`] grid call: the runner fans
//! the design points out over all cores and memoizes each cell.
//!
//! Run with: `cargo run --release --example design_space`

use rasa::power::EngineActivitySummary;
use rasa::prelude::*;
use rasa::systolic::{ControlScheme, PeVariant};
use rasa::workloads::bert_layers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = bert_layers()[0].clone();
    println!("design space on {layer}:");
    println!(
        "{:>18} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "design", "cycles", "norm", "area mm2", "PPA", "energy eff"
    );

    // Baseline first so everything can be normalized against it; then the
    // full valid (PE variant × control scheme) cross product.
    let mut designs = vec![DesignPoint::baseline()];
    for pe in PeVariant::all() {
        for scheme in ControlScheme::all() {
            // WLS without double buffering is not constructible.
            let Ok(systolic) = SystolicConfig::paper(pe, scheme) else {
                continue;
            };
            if systolic.label() != "BASELINE" {
                designs.push(DesignPoint::new(
                    systolic.label(),
                    systolic,
                    CpuConfig::skylake_like(),
                ));
            }
        }
    }

    let runner = ExperimentRunner::builder()
        .with_matmul_cap(Some(1536))
        .build()?;
    let run = &runner.run_grid(std::slice::from_ref(&layer), &designs)?[0];
    let baseline = run.baseline().expect("baseline leads the design list");

    let area_model = AreaModel::new();
    let energy_model = EnergyModel::new();
    let baseline_energy = baseline.power.energy.total();
    let baseline_area = baseline.power.area.total();

    for (design, report) in designs.iter().zip(&run.reports) {
        let systolic = design.systolic();
        let normalized = report.normalized_runtime_vs(baseline);
        let area = area_model.array_area_mm2(systolic);
        let ppa = (1.0 / normalized) / (area / baseline_area);
        let activity = EngineActivitySummary::from_engine_stats(&report.cpu.engine);
        let energy = energy_model.energy(systolic, &activity).total();
        let energy_eff = if energy > 0.0 {
            baseline_energy / energy
        } else {
            0.0
        };

        println!(
            "{:>18} {:>12} {:>10.3} {:>10.3} {:>10.2} {:>11.2}x",
            design.name(),
            report.core_cycles,
            normalized,
            area,
            ppa,
            energy_eff
        );
    }

    println!();
    println!("(norm = runtime normalized to BASELINE; PPA and energy efficiency are");
    println!(" relative to BASELINE; WLS rows only exist for double-buffered PEs)");
    Ok(())
}
