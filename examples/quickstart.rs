//! Quickstart: compute a small GEMM on the functional systolic array, check
//! it against the reference, then compare the baseline and RASA-DMDB-WLS
//! timing for the same kernel.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. Functional: one rasa_mm tile computed by the cycle-stepped
    //    weight-stationary array, validated against the reference GEMM.
    // ---------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let a32 = rasa::numeric::random_matrix(16, 32, &mut rng);
    let b32 = rasa::numeric::random_matrix(32, 16, &mut rng);
    let a = a32.map(Bf16::from_f32);
    let b = b32.map(Bf16::from_f32);
    let c = Matrix::zeros(16, 16);

    let mut golden = c.clone();
    gemm_bf16_fp32(&a, &b, &mut golden)?;

    let config = SystolicConfig::paper_baseline();
    let mut array = FunctionalArray::new(config);
    let (out, activity) = array.matmul(&a, &b, &c)?;
    let max_err = rasa::numeric::max_abs_diff(&golden, &out);
    println!("functional systolic array vs reference GEMM: max |diff| = {max_err:e}");
    println!(
        "one rasa_mm occupies the array for {} cycles at {:.1}% average PE utilization",
        activity.cycles(),
        activity.average_utilization() * 100.0
    );

    // ---------------------------------------------------------------
    // 2. Timing: the same kernel shape as a full workload, simulated on
    //    the baseline design and on RASA-DMDB-WLS.
    // ---------------------------------------------------------------
    let gemm = GemmShape::new(512, 512, 512);
    let baseline = Simulator::new(DesignPoint::baseline())?.run_gemm(gemm)?;
    let rasa_design = Simulator::new(DesignPoint::rasa_dmdb_wls())?.run_gemm(gemm)?;

    println!();
    println!("GEMM {gemm} on the paper's CPU + matrix-engine configuration:");
    println!(
        "  {:<16} {:>14} core cycles",
        baseline.design, baseline.core_cycles
    );
    println!(
        "  {:<16} {:>14} core cycles  ({:.1}% runtime reduction)",
        rasa_design.design,
        rasa_design.core_cycles,
        (1.0 - rasa_design.normalized_runtime_vs(&baseline)) * 100.0
    );
    println!(
        "  weight-load bypass rate on the RASA design: {:.1}%",
        rasa_design.cpu.engine.bypass_rate() * 100.0
    );
    Ok(())
}
