//! ResNet50 inference layers on every evaluated design.
//!
//! The three ResNet50 convolution layers of Table I are lowered to GEMMs via
//! im2col and simulated on the baseline and all seven RASA designs,
//! reproducing one workload group of Fig. 5.
//!
//! Run with: `cargo run --release --example resnet50_inference`

use rasa::prelude::*;
use rasa::workloads::resnet50_layers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = DesignPoint::paper_designs();
    let layers = resnet50_layers();

    println!("ResNet50 layers (Table I) lowered to GEMMs:");
    for layer in &layers {
        println!("  {layer}");
    }
    println!();

    print!("{:>12}", "layer");
    for design in &designs {
        print!("{:>16}", design.name());
    }
    println!();

    for layer in &layers {
        let mut reports = Vec::new();
        for design in &designs {
            let simulator = Simulator::new(design.clone())?.with_matmul_cap(Some(2048))?;
            reports.push(simulator.run_layer(layer)?);
        }
        let baseline = reports[0].clone();
        print!("{:>12}", layer.name());
        for report in &reports {
            print!("{:>16.3}", report.normalized_runtime_vs(&baseline));
        }
        println!();
    }

    println!();
    println!("(values are runtime normalized to the baseline; lower is better)");
    Ok(())
}
