//! Serving-layer tour: stand up a batching [`GemmServer`] over two design
//! points, push a burst of mixed GEMM traffic through it, and inspect the
//! latency breakdown, shape coalescing and bounded-LRU cache behaviour.
//!
//! Run with: `cargo run --release --example serving`

use rasa::prelude::*;
use rasa::sim::serve::{GemmRequest, GemmServer, LatencySummary, ServeConfig};
use rasa::sim::ToJson;
use rasa::workloads::TrafficGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. A server with one worker pool per design. Both pools share a
    //    bounded LRU cache of memoized simulation cells.
    // ---------------------------------------------------------------
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let server = GemmServer::new(
        ServeConfig {
            workers_per_design: 2,
            max_batch: 8,
            cache_capacity: 16,
            matmul_cap: Some(512),
            ..ServeConfig::default()
        },
        &designs,
    )?;
    println!(
        "serving {} designs with {} workers (cache capacity {})",
        server.designs().len(),
        server.worker_count(),
        server.cache_stats().capacity
    );

    // ---------------------------------------------------------------
    // 2. A deterministic burst: Zipf-skewed traffic over the DLRM FC
    //    layers at three batch sizes, alternating between the designs.
    // ---------------------------------------------------------------
    let layers = rasa::workloads::dlrm_layers();
    let mut traffic = TrafficGenerator::new(&layers, &[1, 16, 256], 7).expect("non-empty universe");
    let requests: Vec<GemmRequest> = (0..48)
        .map(|i| GemmRequest::new(designs[i % designs.len()].clone(), traffic.next_request()))
        .collect();
    let responses = server.run_batch(requests)?;

    // ---------------------------------------------------------------
    // 3. What did serving cost? End-to-end latency percentiles plus the
    //    cache and batching counters.
    // ---------------------------------------------------------------
    let latencies: Vec<f64> = responses.iter().map(|r| r.latency.total_seconds).collect();
    let summary = LatencySummary::from_samples(&latencies).expect("non-empty");
    println!(
        "48 requests served: p50 {:.3} ms, p99 {:.3} ms",
        summary.p50_seconds * 1e3,
        summary.p99_seconds * 1e3
    );
    let coalesced = responses.iter().filter(|r| r.batch_size > 1).count();
    println!("{coalesced} responses shared a batch with an identical shape");

    let cache = server.cache_stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {}/{} resident",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.evictions,
        cache.entries,
        cache.capacity
    );
    println!("stats as JSON: {}", server.stats().to_json());

    // A speedup spot-check straight from the served reports: the same
    // workload on both designs.
    let baseline = responses
        .iter()
        .find(|r| r.report.design == "BASELINE")
        .expect("baseline response");
    let rasa = responses
        .iter()
        .find(|r| {
            r.report.design == "RASA-DMDB-WLS" && r.report.workload == baseline.report.workload
        })
        .expect("matching RASA response");
    println!(
        "{}: RASA-DMDB-WLS speedup over baseline = {:.2}x",
        baseline.report.workload,
        rasa.report.speedup_vs(&baseline.report)
    );

    server.shutdown();
    Ok(())
}
