//! SIMD baseline vs the RASA matrix engine.
//!
//! The paper motivates matrix engines by the gap between what a CPU's SIMD
//! units can deliver for GEMM and what a (well-utilized) systolic array can.
//! This example runs the same GEMM through an AVX-512-style vector-FMA
//! kernel (no matrix engine) and through the baseline and RASA-DMDB-WLS
//! matrix-engine designs, comparing core cycles.
//!
//! Run with: `cargo run --release --example simd_vs_matrix`

use rasa::prelude::*;
use rasa::trace::GemmKernelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = GemmShape::new(256, 512, 256);
    let cap = 4096usize;

    // SIMD baseline: generate the AVX trace and run it on the same core
    // (the matrix engine sits idle).
    let generator = TraceGenerator::amx_like()
        .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(cap))?;
    let avx_program = generator.gemm_avx(shape, "avx-sgemm")?;
    let simd_sim = Simulator::new(DesignPoint::baseline())?;
    // Extrapolate the SIMD run over the full FMA count the workload needs.
    let total_fma_work = generator.fma_count(shape) as u64;
    let emitted_fma = avx_program.stats().vector_ops as u64;
    let simd = simd_sim.run_program(&avx_program, 0, "avx-sgemm")?;
    let simd_cycles =
        (simd.simulated_core_cycles as f64 * total_fma_work as f64 / emitted_fma as f64) as u64;

    // Matrix-engine designs.
    let baseline = Simulator::new(DesignPoint::baseline())?
        .with_matmul_cap(Some(cap))?
        .run_gemm(shape)?;
    let rasa = Simulator::new(DesignPoint::rasa_dmdb_wls())?
        .with_matmul_cap(Some(cap))?
        .run_gemm(shape)?;

    println!("GEMM {shape} on the paper's 4-wide 2 GHz core:");
    println!(
        "  {:<26} {:>14} core cycles   1.00x",
        "AVX-512 SIMD (2 FMA ports)", simd_cycles
    );
    println!(
        "  {:<26} {:>14} core cycles   {:.2}x",
        "systolic BASELINE",
        baseline.core_cycles,
        simd_cycles as f64 / baseline.core_cycles as f64
    );
    println!(
        "  {:<26} {:>14} core cycles   {:.2}x",
        "RASA-DMDB-WLS",
        rasa.core_cycles,
        simd_cycles as f64 / rasa.core_cycles as f64
    );
    println!();
    println!("Even the serialized baseline array beats the SIMD units, and the");
    println!("register-aware pipelining recovers the utilization the baseline leaves");
    println!("on the table — the end-to-end motivation for RASA.");
    Ok(())
}
