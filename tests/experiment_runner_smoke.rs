//! Cross-crate smoke tests for the shared `ExperimentRunner` pipeline,
//! exercised through the public facade crate: every built-in design point
//! runs a 128³ GEMM, parallel cached execution is bit-identical to a fresh
//! serial run, and the prelude re-exports the runner types.

use rasa::prelude::*;
use rasa::workloads::LayerSpec;

/// A 128³ GEMM expressed as a workload the runner can grid over (an FC
/// layer lowers to exactly `M = batch, K = in, N = out`).
fn gemm_128() -> LayerSpec {
    let layer = LayerSpec::fc("GEMM-128", 128, 128, 128);
    assert_eq!(layer.gemm_shape(), GemmShape::new(128, 128, 128));
    layer
}

#[test]
fn every_builtin_design_runs_a_128_cubed_gemm() {
    let runner = ExperimentRunner::new();
    let designs = DesignPoint::paper_designs();
    let runs = runner
        .run_grid(&[gemm_128()], &designs)
        .expect("the 128^3 GEMM simulates on every design");
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    assert_eq!(run.reports.len(), designs.len());
    let baseline = run.baseline().expect("BASELINE leads paper_designs");
    for (design, report) in designs.iter().zip(&run.reports) {
        assert_eq!(report.design, design.name());
        assert_eq!(report.workload, "GEMM-128");
        // 128^3 = (128/16) * (128/32) * (128/16) register tiles.
        assert_eq!(report.total_matmuls, 8 * 4 * 8);
        assert_eq!(report.simulated_matmuls, report.total_matmuls);
        assert!(report.core_cycles > 0);
        assert!(
            report.normalized_runtime_vs(baseline) <= 1.0 + 1e-9,
            "{}",
            design.name()
        );
    }
}

#[test]
fn cached_parallel_results_are_bit_identical_to_a_fresh_serial_run() {
    let workloads: Vec<LayerSpec> = rasa::workloads::dlrm_layers();
    let designs = vec![
        DesignPoint::baseline(),
        DesignPoint::rasa_wlbp(),
        DesignPoint::rasa_dmdb_wls(),
    ];

    let parallel = ExperimentRunner::builder()
        .with_matmul_cap(Some(128))
        .with_parallel(true)
        .build()
        .expect("valid runner");
    let serial = ExperimentRunner::builder()
        .with_matmul_cap(Some(128))
        .serial()
        .build()
        .expect("valid runner");

    // First parallel pass populates the cache; the second must be served
    // entirely from it and return the same values.
    let first = parallel
        .run_grid(&workloads, &designs)
        .expect("parallel run");
    let cached = parallel.run_grid(&workloads, &designs).expect("cached run");
    let stats = parallel.cache_stats();
    assert_eq!(stats.misses as usize, workloads.len() * designs.len());
    assert_eq!(stats.hits as usize, workloads.len() * designs.len());
    assert_eq!(first, cached, "cache must return identical reports");

    // And a fresh serial runner reproduces them bit-for-bit.
    let fresh = serial.run_grid(&workloads, &designs).expect("serial run");
    assert!(!serial.is_parallel() && parallel.is_parallel());
    assert_eq!(
        first, fresh,
        "parallel and serial results must be identical"
    );
}

#[test]
fn prelude_reexports_the_runner_types() {
    // The suite builder wires a runner with the same configuration surface.
    let suite: ExperimentSuite = ExperimentSuiteBuilder::default()
        .with_matmul_cap(Some(64))
        .build()
        .expect("valid suite");
    let runner: &ExperimentRunner = suite.runner();
    assert_eq!(runner.matmul_cap(), Some(64));

    // SimJob / ExperimentSpec / CacheStats are usable from the prelude.
    let job = SimJob::new(DesignPoint::baseline(), gemm_128());
    let report = runner.run_job(&job).expect("job runs");
    assert_eq!(report.workload, "GEMM-128");

    let spec = ExperimentSpec {
        name: "prelude-smoke",
        workloads: vec![gemm_128()],
        designs: vec![DesignPoint::baseline()],
        kernel: None,
    };
    assert_eq!(spec.jobs().len(), 1);
    let stats: CacheStats = runner.cache_stats();
    assert_eq!(stats.misses, 1);
    assert!(ExperimentRunnerBuilder::default().build().is_ok());
}
