//! Cross-crate checks of the networked serving tier through the public
//! facade: property tests of the framed wire protocol, consistent-hash
//! ring behaviour, and a loopback shard/router/client integration proving
//! distributed answers are byte-identical to in-process serving — the
//! wire adds transport, never meaning.

use proptest::prelude::*;
use rasa::prelude::*;
use rasa::sim::net::{
    ErrorCode, Frame, FrameDecoder, FrameKind, HashRing, NetError, RouterConfig, ShardConfig,
    WireFailure, WireResponse, MAX_FRAME_LEN, WIRE_VERSION,
};
use rasa::sim::serve::AdmissionControl;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn small_layer(m: usize, k: usize, n: usize) -> LayerSpec {
    LayerSpec::fc(format!("GEMM-{m}x{k}x{n}"), m, k, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any request survives encode → decode bit-exactly, including through
    /// a buffer with trailing garbage (the decoder reports the consumed
    /// length, which is how the stream reader splits back-to-back frames).
    #[test]
    fn requests_round_trip_through_the_wire(
        id in any::<u64>(),
        m in 1usize..96,
        k in 1usize..96,
        n in 1usize..96,
        design_index in 0usize..2,
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let design = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()][design_index].clone();
        let request = WireRequest::new(id, design.name(), small_layer(m, k, n));
        let frame = Frame::json(FrameKind::Request, &request.to_json());
        let mut bytes = frame.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&garbage);

        let (decoded, consumed) = Frame::decode(&bytes).expect("self-encoded frame decodes");
        prop_assert_eq!(consumed, frame_len);
        let reparsed = WireRequest::from_json(&decoded.payload_json().expect("payload is JSON"))
            .expect("payload decodes as a request");
        prop_assert_eq!(reparsed, request);
    }

    /// Corrupting the version byte is always rejected, and truncating a
    /// valid frame anywhere never panics — it asks for more bytes.
    #[test]
    fn corrupt_and_truncated_frames_are_rejected(
        id in any::<u64>(),
        version in 2u8..255,
        cut in 0usize..6,
    ) {
        let failure = WireFailure::new(id, ErrorCode::Internal, "x");
        let mut bytes = Frame::json(FrameKind::Error, &failure.to_json()).encode();

        let truncated = Frame::decode(&bytes[..bytes.len().saturating_sub(cut + 1)]);
        prop_assert!(truncated.is_err(), "truncated frame must not decode");

        bytes[4] = version; // the version byte follows the 4-byte length
        match Frame::decode(&bytes) {
            Err(NetError::BadVersion { got }) => prop_assert_eq!(got, version),
            other => prop_assert!(false, "expected BadVersion, got {:?}", other.map(|_| ())),
        }
    }

    /// The incremental decoder is split-point-invariant: a multi-frame
    /// byte stream chopped at arbitrary boundaries (including mid-header
    /// and mid-payload) decodes to exactly the frames the one-shot parser
    /// sees, in order — the invariant the readiness event loop rests on,
    /// since TCP readiness events deliver bytes at arbitrary boundaries.
    #[test]
    fn incremental_decoder_matches_one_shot_parser_at_any_split(
        id in any::<u64>(),
        m in 1usize..64,
        k in 1usize..64,
        n in 1usize..64,
        message_len in 0usize..48,
        chunk_sizes in proptest::collection::vec(1usize..17, 4..64),
    ) {
        // Three frames of different kinds and payload sizes, including an
        // empty-payload health probe (a frame that completes at its
        // header, the edge the incremental path must get right).
        let request = WireRequest::new(id, "BASELINE", small_layer(m, k, n));
        let failure = WireFailure::new(id, ErrorCode::Internal, "e".repeat(message_len));
        let frames = [
            Frame::json(FrameKind::Request, &request.to_json()),
            Frame::health_probe(),
            Frame::json(FrameKind::Error, &failure.to_json()),
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&frame.encode());
        }

        // One-shot reference: decode the concatenated stream whole.
        let mut expected = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let (frame, consumed) = Frame::decode(&stream[offset..]).expect("whole-stream decode");
            expected.push(frame);
            offset += consumed;
        }

        // Incremental: the same bytes in arbitrary-size chunks (cycling
        // the generated sizes until the stream is exhausted).
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunk_index = 0;
        while offset < stream.len() {
            let size = chunk_sizes[chunk_index % chunk_sizes.len()].min(stream.len() - offset);
            chunk_index += 1;
            let chunk = &stream[offset..offset + size];
            offset += size;
            let mut fed = 0;
            while fed < chunk.len() {
                let (consumed, frame) = decoder.feed(&chunk[fed..]).expect("valid stream");
                fed += consumed;
                if let Some(frame) = frame {
                    decoded.push(frame);
                } else {
                    prop_assert_eq!(fed, chunk.len(), "no frame means the chunk was drained");
                }
            }
        }
        prop_assert!(!decoder.is_mid_frame(), "clean streams leave no partial frame");
        prop_assert_eq!(decoded, expected);
    }

    /// Ring routing is deterministic and total: the same key always lands
    /// on the same shard, and every shard id is in range.
    #[test]
    fn hash_ring_routes_deterministically(
        shards in 1usize..8,
        vnodes in 1usize..96,
        key_seed in any::<u64>(),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let key = format!("cell-{key_seed:x}");
        let shard = ring.route(&key).expect("non-empty ring always routes");
        prop_assert!((shard as usize) < shards);
        prop_assert_eq!(ring.route(&key), Some(shard), "routing must be stable");

        let order = ring.preference_order(&key);
        prop_assert_eq!(order.len(), shards, "failover order visits every shard once");
        prop_assert_eq!(order[0], shard, "preference order starts at the home shard");
    }
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    // A header claiming a body just over the cap must fail fast.
    let body_len = (MAX_FRAME_LEN + 3) as u32;
    let mut bytes = body_len.to_be_bytes().to_vec();
    bytes.extend_from_slice(&[WIRE_VERSION, 0x01]);
    match Frame::decode(&bytes) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, MAX_FRAME_LEN + 1);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected FrameTooLarge, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn killing_a_shard_moves_only_its_keys() {
    let ring = HashRing::new(4, 64);
    let keys: Vec<String> = (0..400).map(|i| format!("cell-{i}")).collect();
    let homes: Vec<u32> = keys
        .iter()
        .map(|k| ring.route(k).expect("non-empty ring"))
        .collect();
    let dead = homes[0];
    for (key, home) in keys.iter().zip(&homes) {
        let rerouted = ring.route_alive(key, |shard| shard != dead);
        if *home == dead {
            assert_ne!(rerouted, Some(dead), "dead shard must not be chosen");
        } else {
            assert_eq!(rerouted, Some(*home), "living shards keep their keys");
        }
    }
}

/// The tentpole claim, end to end over real sockets: a router spread over
/// two shards serves the same bytes as a plain in-process `GemmServer`,
/// and keeps serving (consistently) after one shard dies mid-test.
#[test]
fn distributed_serving_is_byte_identical_and_survives_a_shard_death() {
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let serve = ServeConfig {
        workers_per_design: 1,
        max_batch: 4,
        cache_capacity: 16,
        matmul_cap: Some(96),
        ..ServeConfig::default()
    };
    let shard_a = rasa::sim::net::ShardServer::bind(
        "127.0.0.1:0",
        ShardConfig { shard_id: 0, serve },
        &designs,
    )
    .unwrap();
    let shard_b = rasa::sim::net::ShardServer::bind(
        "127.0.0.1:0",
        ShardConfig { shard_id: 1, serve },
        &designs,
    )
    .unwrap();
    let addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Router::new(
        &addrs,
        RouterConfig {
            vnodes: 32,
            inflight_per_shard: 4,
            admission: AdmissionControl::Block,
            matmul_cap: serve.matmul_cap,
            // The post-kill pass must actually reach the shards to prove
            // failover re-simulation; a result cache would answer the
            // replays without touching a socket.
            result_cache_capacity: 0,
        },
    )
    .unwrap();

    // Reference server: the same designs and cap, in process.
    let reference = GemmServer::new(serve, &designs).unwrap();

    // Grow the layer set until both shards own at least one key, so the
    // post-kill pass is guaranteed to hit the dead shard and exercise
    // failover (key placement is deterministic but shape-dependent).
    let mut layers: Vec<LayerSpec> = Vec::new();
    let mut owners = [false, false];
    for i in 0.. {
        let layer = small_layer(32 + 16 * i, 48, 32);
        let design = &designs[layers.len() % designs.len()];
        let request = WireRequest::new(0, design.name(), layer.clone());
        owners[router.home_shard(&request).unwrap() as usize] = true;
        layers.push(layer);
        if layers.len() >= 6 && owners == [true, true] {
            break;
        }
        assert!(i < 64, "64 shapes never landed on both shards");
    }
    let mut first_pass: Vec<WireResponse> = Vec::new();
    for (i, layer) in layers.iter().enumerate() {
        let design = &designs[i % designs.len()];
        let request = WireRequest::new(i as u64, design.name(), layer.clone());
        let response = router.route(&request).unwrap();
        assert_eq!(response.id, i as u64);

        let direct = reference
            .submit(GemmRequest::new(design.clone(), layer.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            response.report.summary().to_json().to_string(),
            direct.report.summary().to_json().to_string(),
            "distributed summary JSON must be byte-identical for {}",
            layer.name(),
        );
        first_pass.push(response);
    }

    // Kill one shard; every key must still be served, and re-simulated
    // cells must reproduce the identical bytes on the surviving shard.
    shard_a.shutdown();
    for (i, layer) in layers.iter().enumerate() {
        let design = &designs[i % designs.len()];
        let request = WireRequest::new(100 + i as u64, design.name(), layer.clone());
        let response = router.route(&request).unwrap();
        assert_eq!(response.shard, 1, "only shard 1 is left alive");
        assert_eq!(
            response.report.summary().to_json().to_string(),
            first_pass[i].report.summary().to_json().to_string(),
            "failover must not change the answer for {}",
            layer.name(),
        );
    }
    let stats = router.stats();
    assert_eq!(stats.routed, 2 * layers.len() as u64);
    assert!(stats.dead_marked >= 1, "the dead shard must be noticed");

    reference.shutdown();
    router.shutdown();
    shard_b.shutdown();
}

/// A corrupt byte stream pushed at a real server over a real socket: the
/// server answers with a typed `BadRequest` error frame and then closes
/// the connection — a desynced stream must never serve another request.
#[test]
fn corrupt_streams_are_answered_then_closed() {
    let designs = [DesignPoint::baseline()];
    let serve = ServeConfig {
        workers_per_design: 1,
        cache_capacity: 4,
        matmul_cap: Some(64),
        ..ServeConfig::default()
    };
    let shard = rasa::sim::net::ShardServer::bind(
        "127.0.0.1:0",
        ShardConfig { shard_id: 0, serve },
        &designs,
    )
    .unwrap();

    // Two distinct corruptions: a bad version byte, and a declared body
    // length past the frame cap (rejected before any payload allocation).
    let bad_version = {
        let mut bytes = Frame::health_probe().encode();
        bytes[4] = 0x7f;
        bytes
    };
    let oversized = {
        let mut bytes = ((MAX_FRAME_LEN + 3) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[WIRE_VERSION, 0x01]);
        bytes
    };
    for corrupt in [bad_version, oversized] {
        let mut stream = TcpStream::connect(shard.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&corrupt).unwrap();
        let mut decoder = FrameDecoder::new();
        let reply = loop {
            match decoder.read_step(&mut stream) {
                Ok(Some(frame)) => break frame,
                Ok(None) => {}
                Err(error) => panic!("expected an error frame before close, got {error}"),
            }
        };
        assert_eq!(reply.kind, FrameKind::Error);
        let failure = WireFailure::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        // ...then EOF: the server must hang up after the error frame.
        let mut decoder = FrameDecoder::new();
        match decoder.read_step(&mut stream) {
            Err(NetError::Io { kind, .. }) => {
                assert_eq!(kind, std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected EOF after the error frame, got {other:?}"),
        }
    }
    shard.shutdown();
}

/// High-fanout loopback: one shard's event loop holds several hundred
/// concurrent connections at once — far beyond what thread-per-connection
/// could sustain cheaply — and every one of them gets a correct answer
/// while all the others stay open.
#[test]
fn one_event_loop_sustains_hundreds_of_concurrent_connections() {
    const CONNECTIONS: usize = 300;
    let designs = [DesignPoint::baseline()];
    let serve = ServeConfig {
        workers_per_design: 1,
        cache_capacity: 8,
        matmul_cap: Some(64),
        ..ServeConfig::default()
    };
    let shard = rasa::sim::net::ShardServer::bind(
        "127.0.0.1:0",
        ShardConfig { shard_id: 0, serve },
        &designs,
    )
    .unwrap();

    // Open every connection before exchanging a single frame, so the full
    // fanout is concurrently resident in the event loop's slab.
    let mut streams: Vec<TcpStream> = (0..CONNECTIONS)
        .map(|i| {
            let stream = TcpStream::connect(shard.local_addr())
                .unwrap_or_else(|e| panic!("connection {i}: {e}"));
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream
        })
        .collect();

    // A health probe on every connection: each must be answered while the
    // other 299 stay open and idle.
    for (i, stream) in streams.iter_mut().enumerate() {
        Frame::health_probe().write_to(stream).unwrap();
        let reply = Frame::read_from(stream).unwrap_or_else(|e| panic!("connection {i}: {e}"));
        assert_eq!(reply.kind, FrameKind::Health);
    }

    // Real simulation traffic on a sample of the fanout, interleaved, to
    // prove the loop still dispatches work amid hundreds of idle peers.
    let layer = small_layer(32, 48, 32);
    for (i, stream) in streams.iter_mut().enumerate().step_by(29) {
        let request = WireRequest::new(i as u64, "BASELINE", layer.clone());
        Frame::json(FrameKind::Request, &request.to_json())
            .write_to(stream)
            .unwrap();
        let reply = Frame::read_from(stream).unwrap();
        assert_eq!(reply.kind, FrameKind::Response);
        let response = WireResponse::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(response.id, i as u64);
    }

    drop(streams);
    shard.shutdown();
}
