//! Cross-crate integration tests: workload → trace → CPU + matrix engine →
//! report, exercised through the public facade crate.

use rasa::prelude::*;
use rasa::workloads::{dlrm_layers, resnet50_layers};

fn quick_sim(design: DesignPoint) -> Simulator {
    Simulator::new(design)
        .expect("design constructs")
        .with_matmul_cap(Some(512))
        .expect("cap accepted")
}

#[test]
fn all_paper_designs_run_a_conv_layer() {
    let layer = &resnet50_layers()[0];
    for design in DesignPoint::paper_designs() {
        let report = quick_sim(design.clone()).run_layer(layer).unwrap();
        assert!(report.core_cycles > 0, "{}", design.name());
        assert_eq!(report.design, design.name());
        assert_eq!(report.workload, "ResNet50-1");
        // The engine executed exactly the simulated matmuls.
        assert_eq!(report.cpu.engine.matmuls, report.simulated_matmuls);
    }
}

#[test]
fn runtime_ordering_holds_on_a_fc_layer_end_to_end() {
    let layer = &dlrm_layers()[2]; // DLRM-3, the largest FC layer
    let order = [
        DesignPoint::baseline(),
        DesignPoint::rasa_pipe(),
        DesignPoint::rasa_wlbp(),
        DesignPoint::rasa_dm_wlbp(),
        DesignPoint::rasa_db_wls(),
        DesignPoint::rasa_dmdb_wls(),
    ];
    let cycles: Vec<u64> = order
        .iter()
        .map(|d| quick_sim(d.clone()).run_layer(layer).unwrap().core_cycles)
        .collect();
    for (i, pair) in cycles.windows(2).enumerate() {
        assert!(
            pair[0] >= pair[1],
            "design {} should not be slower than its predecessor: {cycles:?}",
            order[i + 1].name()
        );
    }
    let best_reduction = 1.0 - cycles.last().copied().unwrap() as f64 / cycles[0] as f64;
    assert!(
        best_reduction > 0.6,
        "RASA-DMDB-WLS should reduce runtime by well over 60%, got {best_reduction}"
    );
}

#[test]
fn extrapolated_and_exact_runs_agree_on_throughput() {
    // Simulating a quarter of the tiles and extrapolating should land close
    // to simulating everything, because the kernel reaches steady state
    // quickly.
    let gemm = GemmShape::new(256, 512, 256);
    let design = DesignPoint::rasa_wlbp();
    let exact = Simulator::new(design.clone())
        .unwrap()
        .with_matmul_cap(None)
        .unwrap()
        .run_gemm(gemm)
        .unwrap();
    let capped = Simulator::new(design)
        .unwrap()
        .with_matmul_cap(Some(1024))
        .unwrap()
        .run_gemm(gemm)
        .unwrap();
    assert!(!exact.is_extrapolated());
    assert!(capped.is_extrapolated());
    let ratio = capped.core_cycles as f64 / exact.core_cycles as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "extrapolation should be within 10%: {ratio}"
    );
}

#[test]
fn functional_array_agrees_with_reference_through_the_facade() {
    use rasa::numeric::max_abs_diff;
    let a32 = Matrix::from_fn(16, 32, |i, j| ((i * 7 + j * 3) % 11) as f32 - 5.0);
    let b32 = Matrix::from_fn(32, 16, |i, j| ((i + j * 5) % 9) as f32 - 4.0);
    let a = a32.map(Bf16::from_f32);
    let b = b32.map(Bf16::from_f32);
    let mut golden = Matrix::zeros(16, 16);
    gemm_bf16_fp32(&a, &b, &mut golden).unwrap();

    for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
        let mut array = FunctionalArray::new(*design.systolic());
        let (out, _) = array.matmul(&a, &b, &Matrix::zeros(16, 16)).unwrap();
        assert_eq!(max_abs_diff(&golden, &out), 0.0, "{}", design.name());
    }
}

#[test]
fn trace_statistics_match_workload_structure() {
    // The trace generator, tiling and simulator agree on how many rasa_mm
    // instructions a workload needs.
    let generator = TraceGenerator::amx_like();
    let layer = &dlrm_layers()[1]; // DLRM-2: 512x1024x64
    let shape = layer.gemm_shape();
    let expected = (512 / 16) * (1024 / 32) * (64 / 16);
    assert_eq!(generator.matmul_count(shape).unwrap(), expected);

    let report = quick_sim(DesignPoint::baseline()).run_layer(layer).unwrap();
    assert_eq!(report.total_matmuls, expected as u64);
}

#[test]
fn engine_bypass_rate_reflects_the_kernel_blocking() {
    // The 2x2 register blocking reuses each weight tile twice, so roughly
    // half of the rasa_mm instructions bypass Weight Load under WLBP.
    let layer = &dlrm_layers()[0];
    let report = quick_sim(DesignPoint::rasa_wlbp())
        .run_layer(layer)
        .unwrap();
    let rate = report.cpu.engine.bypass_rate();
    assert!(rate > 0.40 && rate < 0.55, "bypass rate {rate}");

    // The baseline never bypasses.
    let base = quick_sim(DesignPoint::baseline()).run_layer(layer).unwrap();
    assert_eq!(base.cpu.engine.weight_bypasses, 0);
}

#[test]
fn csv_summaries_are_well_formed() {
    let layer = &resnet50_layers()[2];
    let report = quick_sim(DesignPoint::rasa_db_wls())
        .run_layer(layer)
        .unwrap();
    let summary = report.summary();
    let row = summary.to_csv_row();
    assert_eq!(
        row.split(',').count(),
        SimSummary::csv_header().split(',').count()
    );
    assert!(row.contains("RASA-DB-WLS"));
    assert!(row.contains("ResNet50-3"));
}
