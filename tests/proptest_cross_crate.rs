//! Cross-crate property tests: invariants that must hold for arbitrary
//! workload shapes and design points.

use proptest::prelude::*;
use rasa::prelude::*;
use rasa::systolic::{base_latency, steady_state_interval, ControlScheme, PeVariant, TileDims};
use rasa::trace::{GemmKernelConfig, KernelSchemeBuilder, LoopOrder, MatmulOrder};

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    prop_oneof![
        Just(DesignPoint::baseline()),
        Just(DesignPoint::rasa_pipe()),
        Just(DesignPoint::rasa_wlbp()),
        Just(DesignPoint::rasa_dm_pipe()),
        Just(DesignPoint::rasa_dm_wlbp()),
        Just(DesignPoint::rasa_db_wls()),
        Just(DesignPoint::rasa_dmdb_wlbp()),
        Just(DesignPoint::rasa_dmdb_wls()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The trace generator always emits exactly one rasa_mm per register
    /// tile, whatever the GEMM shape, and the emitted program is valid.
    /// The streaming source emits the identical sequence as bounded
    /// segments (with per-segment matmul counts summing to the same total),
    /// and `matmul_count` predicts the uncapped emission exactly.
    #[test]
    fn trace_matmul_count_matches_tiling(
        m in 1usize..200,
        k in 1usize..200,
        n in 1usize..200,
        segment_size in 1usize..600,
    ) {
        use rasa::trace::ProgramSource;

        let generator = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().without_scalar_overhead())
            .unwrap();
        let shape = GemmShape::new(m, k, n);
        let program = generator.gemm(shape, "prop").unwrap();
        let tiles = m.div_ceil(16) * k.div_ceil(32) * n.div_ceil(16);
        prop_assert_eq!(program.count_matmuls(), tiles);
        prop_assert_eq!(generator.matmul_count(shape).unwrap(), tiles);
        // Every accumulator tile is loaded and stored exactly once.
        let c_tiles = m.div_ceil(16) * n.div_ceil(16);
        prop_assert_eq!(program.stats().tile_stores, c_tiles);

        // Streamed segments reassemble to the materialized program.
        let mut stream = generator.gemm_stream(shape, "prop", segment_size).unwrap();
        let mut segments = Vec::new();
        let mut streamed_matmuls = 0usize;
        while let Some(segment) = stream.next_segment().unwrap() {
            streamed_matmuls += segment.count_matmuls();
            segments.push(segment);
        }
        prop_assert_eq!(streamed_matmuls, tiles);
        let rebuilt = rasa::isa::Program::from_segments(segments, "prop").unwrap();
        prop_assert_eq!(&rebuilt, &program);
    }

    /// Every RASA design completes any small workload at least as fast as
    /// the serialized baseline, and never loses instructions.
    #[test]
    fn designs_never_lose_instructions_and_never_slow_down(
        design in arb_design(),
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
    ) {
        let shape = GemmShape::new(m * 16, k * 32, n * 16);
        let baseline = Simulator::new(DesignPoint::baseline()).unwrap()
            .run_gemm(shape).unwrap();
        let report = Simulator::new(design).unwrap().run_gemm(shape).unwrap();
        prop_assert_eq!(report.total_matmuls, (m * k * n) as u64);
        prop_assert_eq!(report.simulated_matmuls, (m * k * n) as u64);
        prop_assert!(report.core_cycles <= baseline.core_cycles);
        prop_assert!(report.core_cycles > 0);
    }

    /// The closed-form steady-state interval never exceeds the serialized
    /// latency and never drops below the Feed First duration, for any tile
    /// shape and design.
    #[test]
    fn steady_state_interval_is_bounded(
        tm in 1usize..16,
        tk in 1usize..32,
        tn in 1usize..16,
        reuse in any::<bool>(),
    ) {
        for pe in PeVariant::all() {
            for scheme in ControlScheme::all() {
                let Ok(cfg) = SystolicConfig::paper(pe, scheme) else { continue };
                let tile = TileDims::new(tm, tk, tn);
                let interval = steady_state_interval(&cfg, tile, reuse);
                prop_assert!(interval <= base_latency(&cfg, tile));
                prop_assert!(interval >= tm as u64);
            }
        }
    }

    /// The event-driven core scheduler is cycle-exact: for arbitrary
    /// instruction mixes, designs and buffer sizes, its statistics are
    /// bit-identical to the cycle-stepping reference loop — and feeding
    /// the same program through the resumable streaming API in arbitrary
    /// bounded chunks reproduces them again, bit for bit.
    #[test]
    fn event_driven_core_matches_reference_on_random_programs(
        design in arb_design(),
        seed in 0u64..1000,
        length in 1usize..160,
        rob_size in 6usize..97,
        rs_size in 2usize..60,
        chunk in 1usize..48,
    ) {
        use rand::{Rng, SeedableRng};
        use rasa::cpu::{CpuConfig, CpuCore};
        use rasa::isa::{GprReg, IsaConfig, MemRef, ProgramBuilder, TileReg};
        use rasa::systolic::MatrixEngine;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        for i in 0..8u8 {
            b.declare_live_in(TileReg::new(i).unwrap());
        }
        for _ in 0..length {
            match rng.gen_range(0u32..8) {
                0 => { b.tile_load(
                    TileReg::new(rng.gen_range(0u8..8)).unwrap(),
                    MemRef::tile(u64::from(rng.gen_range(0u32..64)) * 0x400, 64),
                ); }
                1 => { b.tile_store(
                    MemRef::tile(u64::from(rng.gen_range(0u32..64)) * 0x400, 64),
                    TileReg::new(rng.gen_range(0u8..8)).unwrap(),
                ); }
                2 => { b.matmul(
                    TileReg::new(rng.gen_range(0u8..4)).unwrap(),
                    TileReg::new(rng.gen_range(4u8..6)).unwrap(),
                    TileReg::new(rng.gen_range(6u8..8)).unwrap(),
                ); }
                3 => { b.tile_zero(TileReg::new(rng.gen_range(0u8..8)).unwrap()); }
                4 => {
                    let srcs: Vec<GprReg> = (0..rng.gen_range(0usize..3))
                        .map(|_| GprReg::new(rng.gen_range(0u8..16)).unwrap())
                        .collect();
                    b.scalar_alu(GprReg::new(rng.gen_range(0u8..16)).unwrap(), &srcs);
                }
                5 => { b.vector_fma(
                    rng.gen_range(0u8..32),
                    rng.gen_range(0u8..32),
                    rng.gen_range(0u8..32),
                ); }
                6 => { b.branch(rng.gen_range(0u32..2) == 0); }
                _ => { b.push(rasa::isa::Instruction::Nop); }
            }
        }
        let program = b.finish().unwrap();

        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = rob_size;
        cfg.rs_size = rs_size;
        let engine = MatrixEngine::new(*design.systolic());
        let mut core = CpuCore::new(cfg, engine);
        let event = core.run(&program).unwrap();
        let reference = core.run_reference(&program).unwrap();
        prop_assert_eq!(&event, &reference);

        // Resumable streaming parity: feed the program in bounded chunks.
        let mut run = core.begin_run(program.isa()).unwrap();
        for slice in program.instructions().chunks(chunk) {
            core.feed_instructions(&mut run, slice).unwrap();
        }
        let streamed = core.run_to_quiescence(run).unwrap();
        prop_assert_eq!(&streamed, &event);
        prop_assert_eq!(
            core.stream_stats().segments as usize,
            program.len().div_ceil(chunk)
        );
    }

    /// The speculative fork/join orchestrator reproduces the sequential
    /// `CoreRun` statistics bit for bit across random segmentations (warm
    /// length, stride, wave depth), and the forced-mispredict injection
    /// hook proves the replay path restores bit-identity when every
    /// speculative entry state is deliberately poisoned.
    #[test]
    fn speculative_run_matches_sequential_for_random_segmentations(
        design in arb_design(),
        total in 40usize..72,
        warm in 8usize..14,
        depth in 1usize..4,
        stride in 1usize..3,
        force in any::<bool>(),
    ) {
        use rasa::cpu::{CpuConfig, CpuCore, SpecDelta, SpeculativeRun, SpeculativeWorker};
        use rasa::isa::{Instruction, IsaConfig, MemRef, ProgramBuilder, TileReg};
        use rasa::systolic::MatrixEngine;

        let treg = |i: u8| TileReg::new(i).unwrap();
        // Uniform k-step blocks of the Algorithm-1 micro-kernel: the
        // periodic workload shape the speculation probe is built for.
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        let mut blocks: Vec<Vec<Instruction>> = Vec::new();
        for k in 0..total {
            if k == 0 {
                for i in 0..4u8 {
                    b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
                }
            }
            let base = 0x10_000 + (k as u64) * 0x2000;
            b.tile_load(treg(4), MemRef::tile(base, 64));
            b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
            b.matmul(treg(0), treg(6), treg(4));
            b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
            b.matmul(treg(1), treg(7), treg(4));
            b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
            b.matmul(treg(2), treg(6), treg(5));
            b.matmul(treg(3), treg(7), treg(5));
            blocks.push(b.finish_segment().unwrap().instructions().to_vec());
        }

        let isa = IsaConfig::amx_like();
        let core = || CpuCore::new(CpuConfig::skylake_like(), MatrixEngine::new(*design.systolic()));

        let mut golden_core = core();
        let mut run = golden_core.begin_run(&isa).unwrap();
        for block in &blocks {
            golden_core.feed_instructions(&mut run, block).unwrap();
        }
        let golden_cpu = golden_core.run_to_quiescence(run).unwrap();
        let golden_sched = *golden_core.sched_stats();

        let mut spec = SpeculativeRun::begin(core(), &isa).unwrap();
        for block in &blocks[..warm] {
            spec.feed_instructions(block).unwrap();
        }
        // Sliding probe for a confirmed periodic per-block delta; when the
        // window misses (transient too long for this design), the run
        // simply stays sequential and the bit-identity claim still holds.
        let mut seed = spec.checkpoint();
        let mut delta = None;
        let mut next = warm;
        for _ in 0..10 {
            spec.feed_instructions(&blocks[next]).unwrap();
            next += 1;
            let cp = spec.checkpoint();
            if let Some(candidate) = SpecDelta::between(&seed, &cp) {
                if seed.shifted_matches(&candidate, &cp) {
                    delta = Some(candidate);
                    seed = cp;
                    break;
                }
            }
            seed = cp;
        }
        let confirmed = delta.is_some();
        if let Some(delta) = delta {
            spec.set_force_mispredict(force);
            let block_delta = delta;
            while next + depth * stride <= total {
                // A stride of `stride` blocks is `stride` per-block deltas;
                // worker j starts j strides ahead of the seed.
                let mut workers: Vec<(usize, SpeculativeWorker)> = (0..depth)
                    .map(|j| (next + j * stride, spec.fork(&seed, &block_delta, (j * stride) as u64)))
                    .collect();
                for (lo, worker) in &mut workers {
                    for block in &blocks[*lo..*lo + stride] {
                        worker.feed_instructions(block).unwrap();
                    }
                }
                for (lo, worker) in workers {
                    if !spec.try_commit(worker) {
                        for block in &blocks[lo..lo + stride] {
                            spec.feed_instructions(block).unwrap();
                        }
                    }
                }
                next += depth * stride;
                seed = spec.checkpoint();
            }
        }
        for block in &blocks[next..] {
            spec.feed_instructions(block).unwrap();
        }
        let (cpu, sched, stream) = spec.finish().unwrap();
        prop_assert_eq!(&cpu, &golden_cpu);
        prop_assert_eq!(&sched, &golden_sched);
        prop_assert_eq!(stream.spec_forks, stream.spec_commits + stream.spec_replays);
        if confirmed {
            // Enough blocks remain after the probe for at least one wave,
            // so a confirmed delta guarantees the fork path was exercised.
            prop_assert!(stream.spec_forks > 0);
        }
        if force {
            // Every poisoned entry must be caught and replayed.
            prop_assert_eq!(stream.spec_commits, 0);
        } else {
            // A confirmed periodic delta over a uniform stream commits
            // every wave — the deterministic-commit-rate guarantee.
            prop_assert_eq!(stream.spec_replays, 0);
        }
    }

    /// Two jobs that differ only in their kernel scheme must never alias —
    /// not in the runner's semantic cell key (the LRU memoization key) and
    /// not in the serving tier's shape key (the consistent-hash routing
    /// key, which is defined to be the same string). A default-kernel wire
    /// request additionally stays byte-stable: its JSON carries no scheme
    /// member at all.
    #[test]
    fn kernel_schemes_never_alias_cell_or_shape_keys(
        design in arb_design(),
        block_a in 0usize..5,
        block_b in 0usize..5,
        interleaved_a in any::<bool>(),
        interleaved_b in any::<bool>(),
        n_innermost_a in any::<bool>(),
        n_innermost_b in any::<bool>(),
        unroll_a in any::<bool>(),
        unroll_b in any::<bool>(),
    ) {
        let kernel = |block: usize, interleaved: bool, n_innermost: bool, unroll: bool| {
            let (bm, bn) = [(2, 2), (1, 2), (2, 1), (1, 3), (3, 1)][block];
            let mut builder = KernelSchemeBuilder::new()
                .with_block(bm, bn)
                .with_matmul_order(if interleaved {
                    MatmulOrder::Interleaved
                } else {
                    MatmulOrder::WeightPaired
                })
                .with_loop_order(if n_innermost {
                    LoopOrder::NInnermost
                } else {
                    LoopOrder::KInnermost
                });
            if unroll {
                builder = builder.without_scalar_overhead();
            }
            builder.build().unwrap()
        };
        let a = kernel(block_a, interleaved_a, n_innermost_a, unroll_a);
        let b = kernel(block_b, interleaved_b, n_innermost_b, unroll_b);
        prop_assume!(a != b);

        let layer = LayerSpec::fc("KEY-PROP", 64, 64, 64);
        let job_a = SimJob::new(design.clone(), layer.clone()).with_kernel(a);
        let job_b = SimJob::new(design.clone(), layer.clone()).with_kernel(b);
        for cap in [None, Some(256)] {
            prop_assert_ne!(job_a.semantic_key(cap), job_b.semantic_key(cap));
        }

        let request_a = WireRequest::new(1, design.name(), layer.clone()).with_kernel(a);
        let request_b = WireRequest::new(1, design.name(), layer.clone()).with_kernel(b);
        prop_assert_ne!(
            request_a.shape_key(Some(256)).unwrap(),
            request_b.shape_key(Some(256)).unwrap()
        );

        // The default-kernel wire encoding predates kernel schemes and must
        // keep its exact shape: no scheme member, and the default kernel's
        // explicit encoding round-trips to the same key as omitting it.
        let default_request =
            WireRequest::new(1, design.name(), layer).with_kernel(GemmKernelConfig::amx_like());
        prop_assert!(!default_request.to_json().to_string_pretty().contains("\"scheme\""));
        prop_assert_eq!(
            request_a.to_json().to_string_pretty().contains("\"scheme\""),
            !a.scheme.is_default()
        );
    }

    /// Interning cell keys is a pure optimization, never a semantic
    /// change: for any design × workload × kernel × cap, the interned
    /// key's text is byte-identical to the legacy string key, its
    /// precomputed hash is exactly the consistent-hash ring point of that
    /// text (so router placement is unchanged on any ring), the wire
    /// request renders the identical key, and interning is aliasing-free —
    /// equal text means equal keys, perturbed text never compares equal.
    #[test]
    fn interned_cell_keys_match_legacy_string_keys_everywhere(
        design in arb_design(),
        m in 1usize..128,
        k in 1usize..128,
        n in 1usize..128,
        block in 0usize..5,
        interleaved in any::<bool>(),
        unroll in any::<bool>(),
        cap in prop_oneof![Just(None), (1usize..512).prop_map(Some)],
        shards in 1usize..6,
        vnodes in 1usize..48,
    ) {
        use rasa::sim::net::hash::ring_point;
        use rasa::sim::net::HashRing;
        use rasa::sim::CellKey;

        let (bm, bn) = [(2, 2), (1, 2), (2, 1), (1, 3), (3, 1)][block];
        let mut builder = KernelSchemeBuilder::new()
            .with_block(bm, bn)
            .with_matmul_order(if interleaved {
                MatmulOrder::Interleaved
            } else {
                MatmulOrder::WeightPaired
            });
        if unroll {
            builder = builder.without_scalar_overhead();
        }
        let kernel = builder.build().unwrap();
        let layer = LayerSpec::fc(format!("KEY-{m}x{k}x{n}"), m, k, n);
        let job = SimJob::new(design.clone(), layer.clone()).with_kernel(kernel);

        // Byte-identity with the legacy string rendering, at every cap.
        let legacy = job.semantic_key(cap);
        let interned = job.cell_key(cap);
        prop_assert_eq!(interned.as_str(), legacy.as_str());
        prop_assert_eq!(interned.to_string(), legacy.as_str());

        // The precomputed hash is the ring point of the text, so the
        // zero-rehash router path places the key exactly where hashing
        // the string again would, on any ring shape.
        prop_assert_eq!(interned.hash64(), ring_point(legacy.as_bytes()));
        let ring = HashRing::new(shards, vnodes);
        prop_assert_eq!(ring.route(&legacy), ring.route_point(interned.hash64()));

        // The serving tier renders the same key from the wire form.
        let request = WireRequest::new(7, design.name(), layer).with_kernel(kernel);
        prop_assert_eq!(&request.shape_key(cap).unwrap(), &interned);

        // Aliasing-freedom: re-interning the same text compares equal with
        // the same hash; any perturbation of the text never aliases.
        let again = CellKey::from(legacy.clone());
        prop_assert_eq!(&again, &interned);
        prop_assert_eq!(again.hash64(), interned.hash64());
        let perturbed = CellKey::new(format!("{legacy}|x"));
        prop_assert_ne!(&perturbed, &interned);
    }

    /// Functional correctness of the systolic array holds for random
    /// operand values on every PE variant (random shapes are covered by the
    /// crate-level tests; here the emphasis is on data).
    #[test]
    fn functional_array_matches_reference_on_random_data(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(7, 19, |_, _| Bf16::from_f32(rng.gen_range(-2.0f32..2.0)));
        let b = Matrix::from_fn(19, 11, |_, _| Bf16::from_f32(rng.gen_range(-2.0f32..2.0)));
        let c = Matrix::from_fn(7, 11, |_, _| rng.gen_range(-2.0f32..2.0));
        let mut golden = c.clone();
        gemm_bf16_fp32(&a, &b, &mut golden).unwrap();

        for pe in PeVariant::all() {
            let scheme = if pe.has_double_buffering() { ControlScheme::Wls } else { ControlScheme::Base };
            let cfg = SystolicConfig::paper(pe, scheme).unwrap();
            let mut array = FunctionalArray::new(cfg);
            let (out, _) = array.matmul(&a, &b, &c).unwrap();
            // The double-multiplier variants accumulate the even and odd K
            // positions in separate chains before merging, so the result can
            // differ from the reference by floating-point associativity.
            prop_assert!(rasa::numeric::max_abs_diff(&golden, &out) < 1e-4);
        }
    }
}
