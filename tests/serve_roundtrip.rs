//! End-to-end smoke of the serving layer through the public facade: a
//! multi-client burst against a `GemmServer` with a deliberately tiny LRU
//! cache, cross-checked against direct simulation, plus a full JSON
//! round-trip of the served reports.

use rasa::prelude::*;
use rasa::sim::serve::{GemmRequest, GemmServer, ServeConfig};
use rasa::workloads::{LayerSpec, TrafficGenerator};

fn serving_designs() -> Vec<DesignPoint> {
    vec![DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()]
}

#[test]
fn served_reports_match_direct_simulation() {
    let designs = serving_designs();
    let server = GemmServer::new(
        ServeConfig {
            workers_per_design: 2,
            max_batch: 4,
            cache_capacity: 32,
            matmul_cap: Some(96),
            ..ServeConfig::default()
        },
        &designs,
    )
    .unwrap();
    let layer = LayerSpec::fc("GEMM-160", 160, 160, 160);
    let responses = server
        .run_batch(
            designs
                .iter()
                .map(|design| GemmRequest::new(design.clone(), layer.clone()))
                .collect(),
        )
        .unwrap();
    server.shutdown();

    for (design, response) in designs.iter().zip(&responses) {
        let direct = Simulator::new(design.clone())
            .unwrap()
            .with_matmul_cap(Some(96))
            .unwrap()
            .run_layer(&layer)
            .unwrap();
        assert_eq!(
            *response.report,
            direct,
            "served result must equal direct simulation for {}",
            design.name()
        );
    }
    // And the architectural claim survives the serving path: RASA beats
    // the baseline on the same GEMM.
    assert!(responses[1].report.core_cycles < responses[0].report.core_cycles);
}

#[test]
fn concurrent_clients_with_tiny_cache_stay_consistent() {
    let designs = serving_designs();
    let server = GemmServer::new(
        ServeConfig {
            workers_per_design: 2,
            max_batch: 8,
            // Tiny on purpose: force LRU churn under concurrent traffic.
            cache_capacity: 4,
            matmul_cap: Some(64),
            ..ServeConfig::default()
        },
        &designs,
    )
    .unwrap();
    let layers = rasa::workloads::dlrm_layers();

    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let server = &server;
            let layers = &layers;
            let designs = &designs;
            scope.spawn(move || {
                let mut traffic = TrafficGenerator::new(layers, &[1, 8], client).unwrap();
                for i in 0..12 {
                    let design = designs[(client as usize + i) % designs.len()].clone();
                    let workload = traffic.next_request();
                    let response = server
                        .submit(GemmRequest::new(design.clone(), workload.clone()))
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert_eq!(response.report.design, design.name());
                    assert_eq!(response.report.workload, workload.name());
                    assert!(response.report.core_cycles > 0);
                    assert!(response.batch_size >= 1);
                }
            });
        }
    });

    let cache = server.cache_stats();
    let stats = server.stats();
    assert_eq!(stats.submitted, 48);
    assert_eq!(stats.completed, 48);
    assert!(cache.entries <= 4, "LRU bound violated: {}", cache.entries);
    assert_eq!(cache.capacity, 4);
    assert!(
        cache.evictions > 0,
        "12 distinct cells through 4 slots must evict"
    );
    assert_eq!(cache.hits + cache.misses + stats.coalesced, 48);
}

#[test]
fn served_report_json_round_trips_bytewise() {
    let server = GemmServer::new(
        ServeConfig {
            workers_per_design: 2,
            max_batch: 4,
            cache_capacity: 8,
            matmul_cap: Some(64),
            ..ServeConfig::default()
        },
        &serving_designs(),
    )
    .unwrap();
    let layer = LayerSpec::fc("GEMM-96", 96, 96, 96);
    let response = server
        .submit(GemmRequest::new(DesignPoint::rasa_dmdb_wls(), layer))
        .unwrap()
        .wait()
        .unwrap();
    let cache = server.cache_stats();
    server.shutdown();

    // Report -> JSON text -> report is lossless…
    let text = response.report.to_json().to_string_pretty();
    let reloaded = SimReport::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
    assert_eq!(reloaded, *response.report);
    // …and text -> value -> text is byte-identical (the CI diff property).
    assert_eq!(JsonValue::parse(&text).unwrap().to_string_pretty(), text);

    let stats_text = cache.to_json().to_string_pretty();
    let stats_back = CacheStats::from_json(&JsonValue::parse(&stats_text).unwrap()).unwrap();
    assert_eq!(stats_back, cache);
}
