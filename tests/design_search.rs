//! Integration tests of the design-space search subsystem: seeded
//! determinism (identical frontiers and byte-identical JSON), cell-cache
//! reuse on revisited genotypes, and cross-strategy consistency.

use proptest::prelude::*;
use rasa::sim::search::{
    DesignSearch, Evolutionary, ExhaustiveGrid, RandomSampling, SearchSpace, SearchStrategy,
};
use rasa::sim::{ExperimentRunner, ToJson};
use rasa::systolic::{ControlScheme, PeVariant};
use rasa::workloads::LayerSpec;

/// A layer small enough that a capped cell simulates in well under a
/// millisecond, so the proptest can afford dozens of search runs.
fn tiny_layer() -> LayerSpec {
    LayerSpec::fc("TINY-FC", 32, 64, 64)
}

fn capped_runner(parallel: bool) -> ExperimentRunner {
    ExperimentRunner::builder()
        .with_matmul_cap(Some(32))
        .with_parallel(parallel)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded-search determinism: whatever the seed and strategy
    /// parameters, two runs of the same search (on fresh runners) produce
    /// the identical frontier and a byte-identical JSON document.
    #[test]
    fn seeded_search_runs_are_reproducible(
        seed in 0u64..1_000_000,
        population in 2usize..7,
        generations in 1usize..4,
        samples in 1usize..24,
        kind in 0usize..3,
    ) {
        let strategy: Box<dyn SearchStrategy> = match kind {
            0 => Box::new(ExhaustiveGrid),
            1 => Box::new(RandomSampling::new(samples, seed)),
            _ => Box::new(Evolutionary::new(population, generations, seed)),
        };
        let space = SearchSpace::explorer();
        let layer = tiny_layer();
        // One parallel runner and one serial runner: the outcome must not
        // depend on scheduling either.
        let first = DesignSearch::new(&capped_runner(true), space.clone(), layer.clone())
            .run(strategy.as_ref())
            .unwrap();
        let second = DesignSearch::new(&capped_runner(false), space, layer)
            .run(strategy.as_ref())
            .unwrap();
        prop_assert_eq!(&first.frontier, &second.frontier);
        prop_assert_eq!(&first, &second);
        let first_json = first.to_json().to_string_pretty();
        let second_json = second.to_json().to_string_pretty();
        prop_assert_eq!(first_json, second_json, "JSON documents must be byte-identical");
    }
}

/// An evolutionary run over a two-candidate space revisits genotypes by
/// construction; every revisit must be served by the runner's memoizing
/// cell cache — observable through `CacheStats` — and never re-simulated.
#[test]
fn evolutionary_revisits_hit_the_cell_cache() {
    let space = SearchSpace::builder()
        .with_pe_variants(vec![PeVariant::Baseline])
        .with_control_schemes(vec![ControlScheme::Base, ControlScheme::Pipe])
        .build()
        .unwrap();
    assert_eq!(space.len(), 2);
    let runner = ExperimentRunner::builder()
        .with_matmul_cap(Some(32))
        .serial()
        .build()
        .unwrap();
    let outcome = DesignSearch::new(&runner, space, tiny_layer())
        .run(&Evolutionary::new(4, 3, 9))
        .unwrap();

    assert_eq!(outcome.requested_evaluations, 4 * 4, "init + 3 generations");
    assert!(outcome.distinct_evaluated <= 2);
    assert!(
        outcome.requested_evaluations > outcome.distinct_evaluated,
        "a 16-request run over 2 candidates must revisit genotypes"
    );

    let stats = runner.cache_stats();
    // No re-simulation: at most one cell per distinct genotype plus the
    // baseline anchor (which here shares the BASELINE candidate's cell).
    assert!(
        stats.misses as usize <= outcome.distinct_evaluated + 1,
        "revisited genotypes were re-simulated: {stats:?}"
    );
    assert!(
        stats.hits >= 1,
        "revisits must be served by the cell cache: {stats:?}"
    );
}

/// The three strategies agree with each other: sampling strategies only
/// ever find frontier points the exhaustive grid (ground truth over the
/// same space) either contains or dominates.
#[test]
fn sampled_frontiers_are_consistent_with_the_exhaustive_grid() {
    let space = SearchSpace::explorer();
    let layer = tiny_layer();
    let grid = DesignSearch::new(&capped_runner(true), space.clone(), layer.clone())
        .run(&ExhaustiveGrid)
        .unwrap();
    for strategy in [
        Box::new(RandomSampling::new(24, 5)) as Box<dyn SearchStrategy>,
        Box::new(Evolutionary::new(6, 3, 5)) as Box<dyn SearchStrategy>,
    ] {
        let sampled = DesignSearch::new(&capped_runner(true), space.clone(), layer.clone())
            .run(strategy.as_ref())
            .unwrap();
        for member in &sampled.frontier {
            let represented = grid.frontier.iter().any(|g| {
                g.genotype == member.genotype || g.objectives.dominates(&member.objectives)
            });
            let tied = grid
                .frontier
                .iter()
                .any(|g| g.objectives == member.objectives);
            assert!(
                represented || tied,
                "{} frontier point {} is neither on nor dominated by the grid frontier",
                sampled.strategy,
                member.name
            );
        }
    }
}

/// Joint hardware × kernel search is deterministic (two fresh runs —
/// one parallel, one serial — produce byte-identical JSON) and pays off:
/// the joint frontier contains a co-designed point that strictly
/// dominates a point on the hardware-only frontier over the same
/// hardware axes, which is the whole argument for searching the two
/// spaces together.
#[test]
fn joint_search_is_deterministic_and_dominates_hardware_only_points() {
    let layer = tiny_layer();
    let first = DesignSearch::new(
        &capped_runner(true),
        SearchSpace::explorer_joint(),
        layer.clone(),
    )
    .run(&ExhaustiveGrid)
    .unwrap();
    let second = DesignSearch::new(
        &capped_runner(false),
        SearchSpace::explorer_joint(),
        layer.clone(),
    )
    .run(&ExhaustiveGrid)
    .unwrap();
    assert_eq!(first, second);
    assert_eq!(
        first.to_json().to_string_pretty(),
        second.to_json().to_string_pretty(),
        "joint-search JSON must be byte-identical across runs"
    );

    let hardware_only = DesignSearch::new(&capped_runner(true), SearchSpace::explorer(), layer)
        .run(&ExhaustiveGrid)
        .unwrap();
    let dominating = first.frontier.iter().find(|joint| {
        joint.genotype.kernel.is_some_and(|k| !k.is_default())
            && hardware_only
                .frontier
                .iter()
                .any(|hw| joint.objectives.dominates(&hw.objectives))
    });
    assert!(
        dominating.is_some(),
        "no co-designed frontier point dominates the hardware-only frontier: {:?}",
        first.frontier_names()
    );
    // Every joint candidate carries its kernel in the document.
    assert!(first
        .frontier
        .iter()
        .all(|member| member.genotype.kernel.is_some()));
}

/// The JSON document written by the `design_search` binary path is
/// parse→reserialize stable (the property `write_verified_json` checks on
/// every write).
#[test]
fn search_json_survives_a_parse_reserialize_round_trip() {
    let outcome = DesignSearch::new(&capped_runner(true), SearchSpace::paper(), tiny_layer())
        .run(&RandomSampling::new(8, 3))
        .unwrap();
    let text = outcome.to_json().to_string_pretty();
    let reparsed = rasa::sim::JsonValue::parse(&text).unwrap();
    assert_eq!(reparsed.to_string_pretty(), text);
}
