//! Integration tests that check the paper's headline quantitative claims at
//! reduced simulation scale (the full-scale numbers are produced by the
//! `rasa-bench` binaries and recorded in EXPERIMENTS.md).

use rasa::prelude::*;
use rasa::systolic::{base_latency, stage_durations, steady_state_interval, TileDims};
use rasa::systolic::{ControlScheme, PeVariant};

#[test]
fn equation_1_the_baseline_latency_is_95_cycles() {
    let cfg = SystolicConfig::paper_baseline();
    let tile = TileDims::full(&cfg);
    assert_eq!(base_latency(&cfg, tile), 95);
    let d = stage_durations(&cfg, tile);
    assert_eq!((d.wl, d.ff, d.fs, d.dr), (32, 16, 31, 16));
}

#[test]
fn fig7_asymptote_is_16_over_95() {
    // "If we perfectly pipeline all rasa_mm, we complete a rasa_mm every 16
    // cycles. Thus, RASA-DMDB-WLS can at best bring the normalized runtime
    // down to 16/95 = 0.168."
    let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();
    let base = SystolicConfig::paper_baseline();
    let tile = TileDims::new(16, 32, 16);
    let best = steady_state_interval(&dmdb, tile, true) as f64 / base_latency(&base, tile) as f64;
    assert!((best - 16.0 / 95.0).abs() < 1e-9);
    assert!((best - 0.168).abs() < 0.001);
}

#[test]
fn fig1_toy_walkthrough_average_utilization() {
    let result = ExperimentSuite::new().fig1_toy().unwrap();
    assert_eq!(result.total_latency, 7);
    assert!((result.average_utilization - 0.286).abs() < 0.01);
}

#[test]
fn fig5_reductions_reproduce_the_paper_shape() {
    // Reduced-scale Fig. 5: the ordering of designs and the rough size of
    // the improvements must match the paper (15.7% / 30.9% / 55.5% / 78.1%
    // / 79.2%). Absolute agreement is not expected: the traces and the CPU
    // substrate are reimplementations, not the authors' LIBXSMM + MacSim.
    let fig5 = ExperimentSuite::new()
        .with_matmul_cap(Some(256))
        .fig5_runtime()
        .unwrap();

    let reduction = |d: &str| fig5.average_reduction(d).unwrap();

    // Ordering.
    assert!(reduction("RASA-PIPE") < reduction("RASA-WLBP"));
    assert!(reduction("RASA-WLBP") < reduction("RASA-DM-WLBP"));
    assert!(reduction("RASA-DM-WLBP") < reduction("RASA-DB-WLS"));
    assert!(reduction("RASA-DMDB-WLS") >= reduction("RASA-DB-WLS") - 0.02);

    // Rough magnitudes (generous bands around the paper's values).
    assert!((0.05..0.35).contains(&reduction("RASA-PIPE")));
    assert!((0.2..0.6).contains(&reduction("RASA-WLBP")));
    assert!((0.35..0.75).contains(&reduction("RASA-DM-WLBP")));
    assert!((0.6..0.9).contains(&reduction("RASA-DB-WLS")));
    assert!((0.6..0.9).contains(&reduction("RASA-DMDB-WLS")));
}

#[test]
fn area_overheads_match_the_reported_percentages() {
    let area = AreaModel::new();
    let base = SystolicConfig::paper_baseline();
    let db = SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap();
    let dm = SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wlbp).unwrap();
    let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();

    // Paper: 3.1%, 2.6%, 5.5% overhead; baseline ≈ 0.7% of the Skylake die.
    assert!((area.overhead_vs(&db, &base) - 0.031).abs() < 0.015);
    assert!((area.overhead_vs(&dm, &base) - 0.026).abs() < 0.015);
    assert!((area.overhead_vs(&dmdb, &base) - 0.055).abs() < 0.02);
    let frac = area.fraction_of_skylake_die(&base);
    assert!((frac - 0.007).abs() < 0.002);
    // Full DMDB design lands near the reported 0.847 mm² total.
    assert!((area.array_area_mm2(&dmdb) - 0.847).abs() < 0.05);
}

#[test]
fn fig7_batch_sensitivity_shape() {
    let fig7 = ExperimentSuite::new()
        .with_matmul_cap(Some(192))
        .with_fig7_max_batch(128)
        .fig7_batch()
        .unwrap();
    // Flat below batch 16 (the tile-row granularity), then decreasing
    // toward the asymptote.
    for layer in fig7.layers() {
        let b1 = fig7.normalized(&layer, 1).unwrap();
        let b16 = fig7.normalized(&layer, 16).unwrap();
        let b128 = fig7.normalized(&layer, 128).unwrap();
        assert!((b1 - b16).abs() < 0.02, "{layer}");
        assert!(b128 <= b16 + 1e-9, "{layer}");
        assert!(b128 >= fig7.asymptote - 0.02, "{layer}");
    }
}

#[test]
fn design_search_grid_rediscovers_the_paper_best_designs() {
    // The exhaustive grid over the paper's own design space (every valid
    // PE variant x control scheme at the evaluated geometry) must
    // rediscover the paper's conclusions on each workload class: the
    // Pareto frontier consists of exactly the designs the paper highlights
    // — RASA-DMDB-WLS (best performance), RASA-DB-WLS (best energy
    // efficiency) and the WLBP trade-off points — with RASA-DMDB-WLS the
    // fastest, near the 16/95 pipelining asymptote.
    use rasa::sim::search::{DesignSearch, ExhaustiveGrid, SearchSpace};

    // The paper space covers exactly the valid (variant x scheme)
    // combinations at the evaluated geometry.
    let expected_candidates = SystolicConfig::valid_combinations().len();
    assert_eq!(SearchSpace::paper().len(), expected_candidates);

    let suite = WorkloadSuite::mlperf();
    // One representative layer per workload class (FC from DLRM and BERT,
    // conv from ResNet50).
    for layer_name in ["DLRM-2", "BERT-2", "ResNet50-1"] {
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(192))
            .build()
            .unwrap();
        let layer = suite.layer(layer_name).unwrap().clone();
        let outcome = DesignSearch::new(&runner, SearchSpace::paper(), layer)
            .run(&ExhaustiveGrid)
            .unwrap();
        assert_eq!(
            outcome.distinct_evaluated, expected_candidates,
            "{layer_name}"
        );

        let names = outcome.frontier_names();
        assert_eq!(
            names,
            vec!["RASA-DMDB-WLS", "RASA-DB-WLS", "RASA-DM-WLBP", "RASA-WLBP"],
            "{layer_name}: frontier must rediscover the paper's named designs"
        );

        // The paper's best-performance design leads the frontier, close to
        // the 16/95 = 0.168 perfect-pipelining asymptote.
        let fastest = outcome.fastest().unwrap();
        assert_eq!(fastest.name, "RASA-DMDB-WLS", "{layer_name}");
        assert!(
            (0.16..0.20).contains(&fastest.objectives.normalized_runtime),
            "{layer_name}: fastest norm {}",
            fastest.objectives.normalized_runtime
        );

        // The paper's best energy-efficiency design uses the least energy
        // of any frontier member.
        let frugal = outcome
            .frontier
            .iter()
            .min_by(|a, b| {
                a.objectives
                    .energy_joules
                    .total_cmp(&b.objectives.energy_joules)
            })
            .unwrap();
        assert_eq!(frugal.name, "RASA-DB-WLS", "{layer_name}");
    }
}

#[test]
fn energy_efficiency_scale_matches_the_paper() {
    let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
    let fig5 = suite.fig5_runtime().unwrap();
    let table = suite.area_energy_from(&fig5);
    let db = table.row("RASA-DB-WLS").unwrap().energy_efficiency;
    let dm = table.row("RASA-DM-WLBP").unwrap().energy_efficiency;
    let dmdb = table.row("RASA-DMDB-WLS").unwrap().energy_efficiency;
    // Paper: 4.38x / 2.19x / 4.59x.
    assert!(db > 2.5 && db < 6.0, "db {db}");
    assert!(dm > 1.5 && dm < 3.5, "dm {dm}");
    assert!(dmdb > 2.5 && dmdb < 6.5, "dmdb {dmdb}");
    assert!(db > dm && dmdb > dm);
}
