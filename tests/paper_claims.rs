//! Integration tests that check the paper's headline quantitative claims at
//! reduced simulation scale (the full-scale numbers are produced by the
//! `rasa-bench` binaries and recorded in EXPERIMENTS.md).

use rasa::prelude::*;
use rasa::systolic::{base_latency, stage_durations, steady_state_interval, TileDims};
use rasa::systolic::{ControlScheme, PeVariant};

#[test]
fn equation_1_the_baseline_latency_is_95_cycles() {
    let cfg = SystolicConfig::paper_baseline();
    let tile = TileDims::full(&cfg);
    assert_eq!(base_latency(&cfg, tile), 95);
    let d = stage_durations(&cfg, tile);
    assert_eq!((d.wl, d.ff, d.fs, d.dr), (32, 16, 31, 16));
}

#[test]
fn fig7_asymptote_is_16_over_95() {
    // "If we perfectly pipeline all rasa_mm, we complete a rasa_mm every 16
    // cycles. Thus, RASA-DMDB-WLS can at best bring the normalized runtime
    // down to 16/95 = 0.168."
    let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();
    let base = SystolicConfig::paper_baseline();
    let tile = TileDims::new(16, 32, 16);
    let best = steady_state_interval(&dmdb, tile, true) as f64 / base_latency(&base, tile) as f64;
    assert!((best - 16.0 / 95.0).abs() < 1e-9);
    assert!((best - 0.168).abs() < 0.001);
}

#[test]
fn fig1_toy_walkthrough_average_utilization() {
    let result = ExperimentSuite::new().fig1_toy().unwrap();
    assert_eq!(result.total_latency, 7);
    assert!((result.average_utilization - 0.286).abs() < 0.01);
}

#[test]
fn fig5_reductions_reproduce_the_paper_shape() {
    // Reduced-scale Fig. 5: the ordering of designs and the rough size of
    // the improvements must match the paper (15.7% / 30.9% / 55.5% / 78.1%
    // / 79.2%). Absolute agreement is not expected: the traces and the CPU
    // substrate are reimplementations, not the authors' LIBXSMM + MacSim.
    let fig5 = ExperimentSuite::new()
        .with_matmul_cap(Some(256))
        .fig5_runtime()
        .unwrap();

    let reduction = |d: &str| fig5.average_reduction(d).unwrap();

    // Ordering.
    assert!(reduction("RASA-PIPE") < reduction("RASA-WLBP"));
    assert!(reduction("RASA-WLBP") < reduction("RASA-DM-WLBP"));
    assert!(reduction("RASA-DM-WLBP") < reduction("RASA-DB-WLS"));
    assert!(reduction("RASA-DMDB-WLS") >= reduction("RASA-DB-WLS") - 0.02);

    // Rough magnitudes (generous bands around the paper's values).
    assert!((0.05..0.35).contains(&reduction("RASA-PIPE")));
    assert!((0.2..0.6).contains(&reduction("RASA-WLBP")));
    assert!((0.35..0.75).contains(&reduction("RASA-DM-WLBP")));
    assert!((0.6..0.9).contains(&reduction("RASA-DB-WLS")));
    assert!((0.6..0.9).contains(&reduction("RASA-DMDB-WLS")));
}

#[test]
fn area_overheads_match_the_reported_percentages() {
    let area = AreaModel::new();
    let base = SystolicConfig::paper_baseline();
    let db = SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap();
    let dm = SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wlbp).unwrap();
    let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();

    // Paper: 3.1%, 2.6%, 5.5% overhead; baseline ≈ 0.7% of the Skylake die.
    assert!((area.overhead_vs(&db, &base) - 0.031).abs() < 0.015);
    assert!((area.overhead_vs(&dm, &base) - 0.026).abs() < 0.015);
    assert!((area.overhead_vs(&dmdb, &base) - 0.055).abs() < 0.02);
    let frac = area.fraction_of_skylake_die(&base);
    assert!((frac - 0.007).abs() < 0.002);
    // Full DMDB design lands near the reported 0.847 mm² total.
    assert!((area.array_area_mm2(&dmdb) - 0.847).abs() < 0.05);
}

#[test]
fn fig7_batch_sensitivity_shape() {
    let fig7 = ExperimentSuite::new()
        .with_matmul_cap(Some(192))
        .with_fig7_max_batch(128)
        .fig7_batch()
        .unwrap();
    // Flat below batch 16 (the tile-row granularity), then decreasing
    // toward the asymptote.
    for layer in fig7.layers() {
        let b1 = fig7.normalized(&layer, 1).unwrap();
        let b16 = fig7.normalized(&layer, 16).unwrap();
        let b128 = fig7.normalized(&layer, 128).unwrap();
        assert!((b1 - b16).abs() < 0.02, "{layer}");
        assert!(b128 <= b16 + 1e-9, "{layer}");
        assert!(b128 >= fig7.asymptote - 0.02, "{layer}");
    }
}

#[test]
fn energy_efficiency_scale_matches_the_paper() {
    let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
    let fig5 = suite.fig5_runtime().unwrap();
    let table = suite.area_energy_from(&fig5);
    let db = table.row("RASA-DB-WLS").unwrap().energy_efficiency;
    let dm = table.row("RASA-DM-WLBP").unwrap().energy_efficiency;
    let dmdb = table.row("RASA-DMDB-WLS").unwrap().energy_efficiency;
    // Paper: 4.38x / 2.19x / 4.59x.
    assert!(db > 2.5 && db < 6.0, "db {db}");
    assert!(dm > 1.5 && dm < 3.5, "dm {dm}");
    assert!(dmdb > 2.5 && dmdb < 6.5, "dmdb {dmdb}");
    assert!(db > dm && dmdb > dm);
}
